package shard

import (
	"fmt"

	"abft/internal/core"
)

// batchWorkspace is one in-flight ApplyBatch's set of per-band local
// multivectors, the k-column analogue of workspace. Pooled per width so
// concurrent batched solves sharing one cached operator never contend
// on buffers.
type batchWorkspace struct {
	k    int
	x, y []*core.MultiVector
}

func (o *Operator) newBatchWorkspace(k int) *batchWorkspace {
	ws := &batchWorkspace{k: k}
	for _, b := range o.bands {
		x := core.NewMultiVector(b.localCols, k, o.opt.VectorScheme)
		y := core.NewMultiVector(b.rows(), k, o.opt.VectorScheme)
		for _, mv := range []*core.MultiVector{x, y} {
			mv.SetCRCBackend(o.opt.Config.Backend)
			mv.SetCounters(o.counters)
		}
		ws.x = append(ws.x, x)
		ws.y = append(ws.y, y)
	}
	return ws
}

func (o *Operator) getBatchWorkspace(k int) *batchWorkspace {
	o.wsMu.Lock()
	if pool := o.batchFree[k]; len(pool) > 0 {
		ws := pool[len(pool)-1]
		o.batchFree[k] = pool[:len(pool)-1]
		o.wsMu.Unlock()
		return ws
	}
	o.wsMu.Unlock()
	return o.newBatchWorkspace(k)
}

func (o *Operator) putBatchWorkspace(ws *batchWorkspace) {
	o.wsMu.Lock()
	if o.batchFree == nil {
		o.batchFree = make(map[int][]*batchWorkspace)
	}
	o.batchFree[ws.k] = append(o.batchFree[ws.k], ws)
	o.wsMu.Unlock()
}

// ApplyBatch computes dst = A x for every column of x across all
// shards, satisfying core.BatchApplier: the bulk-synchronous
// scatter/exchange/local pipeline runs once for the whole batch, with
// each shard's local product delegated to its format's batched kernel.
// The halo exchange packs all k columns of a boundary run through one
// batched verified read per owning shard — k values per boundary
// element travel in one protected message — so the exchange's check
// cost, like the matrix sweep's, is paid per batch rather than per
// right-hand side. Per-column results are bit-identical to k
// independent Apply calls.
func (o *Operator) ApplyBatch(dst, x *core.MultiVector, workers int) error {
	if dst.Len() != o.rows || x.Len() != o.cols {
		return fmt.Errorf("shard: ApplyBatch dimension mismatch: dst %d, A %dx%d, x %d",
			dst.Len(), o.rows, o.cols, x.Len())
	}
	if dst.K() != x.K() {
		return fmt.Errorf("shard: ApplyBatch width mismatch: dst %d, x %d", dst.K(), x.K())
	}
	k := x.K()
	ws := o.getBatchWorkspace(k)
	defer o.putBatchWorkspace(ws)
	localWorkers := workers / len(o.bands)
	if localWorkers < 1 {
		localWorkers = 1
	}

	// Scatter: each shard batch-verifies its span of every global column
	// in one multivector read per chunk and re-encodes it into its local
	// interior columns.
	err := o.forEachBand(func(bi int, b *band) error {
		buf := make([]float64, packChunk*blockLen*k)
		b0 := b.r0 / blockLen
		nb := (b.rows() + blockLen - 1) / blockLen
		for c := 0; c < nb; c += packChunk {
			cn := packChunk
			if nb-c < cn {
				cn = nb - c
			}
			span := cn * blockLen
			if err := x.ReadBlocksInto(b0+c, b0+c+cn, buf[:k*span]); err != nil {
				return fmt.Errorf("shard: scatter into shard %d: %w", bi, err)
			}
			for j := 0; j < k; j++ {
				col := ws.x[bi].Col(j)
				for i := 0; i < cn; i++ {
					col.WriteBlock(c+i, (*[blockLen]float64)(buf[j*span+i*blockLen:]))
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	o.fire(PhaseScatter)

	if err := o.exchangeBatch(ws); err != nil {
		return err
	}
	o.fire(PhaseExchange)

	// Local products through the formats' batched kernels, gathered
	// per column into the block-aligned global destination.
	err = o.forEachBand(func(bi int, b *band) error {
		if ba, ok := b.m.(core.BatchApplier); ok {
			if err := ba.ApplyBatch(ws.y[bi], ws.x[bi], localWorkers); err != nil {
				return fmt.Errorf("shard: shard %d: %w", bi, err)
			}
		} else {
			for j := 0; j < k; j++ {
				if err := b.m.Apply(ws.y[bi].Col(j), ws.x[bi].Col(j), localWorkers); err != nil {
					return fmt.Errorf("shard: shard %d: %w", bi, err)
				}
			}
		}
		buf := make([]float64, packChunk*blockLen*k)
		b0 := b.r0 / blockLen
		nb := (b.rows() + blockLen - 1) / blockLen
		for c := 0; c < nb; c += packChunk {
			cn := packChunk
			if nb-c < cn {
				cn = nb - c
			}
			span := cn * blockLen
			if err := ws.y[bi].ReadBlocksInto(c, c+cn, buf[:k*span]); err != nil {
				return fmt.Errorf("shard: gather from shard %d: %w", bi, err)
			}
			for j := 0; j < k; j++ {
				col := dst.Col(j)
				for i := 0; i < cn; i++ {
					col.WriteBlock(b0+c+i, (*[blockLen]float64)(buf[j*span+i*blockLen:]))
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	o.fire(PhaseLocal)
	return nil
}

// exchangeBatch fills every shard's halo sections from the owning
// shards' local multivectors: the boundary runs are computed once per
// destination shard, and each run's source blocks are verified for all
// k columns in a single batched shared read — one protected message
// carrying k values per boundary element — then re-encoded into each
// destination column's halo.
func (o *Operator) exchangeBatch(ws *batchWorkspace) error {
	k := ws.k
	return o.forEachBand(func(bi int, b *band) error {
		n := len(b.haloCols)
		if n == 0 {
			return nil
		}
		outs := make([][blockLen]float64, k)
		var src []float64
		for c := 0; c < n; {
			// Grow a run exactly as the single-RHS exchange does: same
			// owner, each column's source block at most one beyond the
			// last.
			ow := o.owner(int(b.haloCols[c]))
			r0, r1 := o.bands[ow].r0, o.bands[ow].r1
			blk0 := (int(b.haloCols[c]) - r0) / blockLen
			end, blkEnd := c+1, blk0
			for end < n && int(b.haloCols[end]) < r1 {
				blk := (int(b.haloCols[end]) - r0) / blockLen
				if blk > blkEnd+1 {
					break
				}
				blkEnd = blk
				end++
			}
			span := (blkEnd - blk0 + 1) * blockLen
			if cap(src) < k*span {
				src = make([]float64, k*span)
			}
			src = src[:k*span]
			if err := ws.x[ow].ReadBlocksSharedInto(blk0, blkEnd+1, src); err != nil {
				return fmt.Errorf("shard: pack shard %d for shard %d: %w", ow, bi, err)
			}
			for ; c < end; c++ {
				lc := int(b.haloCols[c]) - r0
				for j := 0; j < k; j++ {
					outs[j][c%blockLen] = src[j*span+lc-blk0*blockLen]
				}
				if c%blockLen == blockLen-1 {
					for j := 0; j < k; j++ {
						ws.x[bi].Col(j).WriteBlock(b.interiorPad/blockLen+c/blockLen, &outs[j])
						outs[j] = [blockLen]float64{}
					}
				}
			}
		}
		if n%blockLen != 0 {
			for j := 0; j < k; j++ {
				ws.x[bi].Col(j).WriteBlock(b.interiorPad/blockLen+(n-1)/blockLen, &outs[j])
			}
		}
		return nil
	})
}
