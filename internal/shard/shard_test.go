package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/mm"
	"abft/internal/op"
	"abft/internal/solvers"
)

// generalMatrix returns an irregular SPD operator — a general sparse
// matrix, not a stencil — routed through a MatrixMarket document, so
// every test here also covers the ingestion path solve requests use.
func generalMatrix(t *testing.T, n int) *csr.Matrix {
	t.Helper()
	var buf bytes.Buffer
	if err := mm.Write(&buf, csr.IrregularSPD(n)); err != nil {
		t.Fatal(err)
	}
	m, err := mm.ReadString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("test matrix not symmetric")
	}
	return m
}

func refVector(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*13)%29) - 14 + float64(i%7)/8
	}
	return out
}

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ rows, shards, want int }{
		{100, 1, 1},
		{100, 4, 4},
		{8, 64, 2},
		{4, 3, 1},
		{10, 3, 3},
	} {
		if got := Clamp(tc.rows, tc.shards); got != tc.want {
			t.Errorf("Clamp(%d,%d) = %d, want %d", tc.rows, tc.shards, got, tc.want)
		}
	}
}

// TestShardedApplyMatchesReference checks exact SpMV parity of the
// sharded composite against the unprotected reference for every format
// and several shard counts, including counts that clamp.
func TestShardedApplyMatchesReference(t *testing.T) {
	plain := generalMatrix(t, 30)
	xs := refVector(plain.Cols32())
	want := make([]float64, plain.Rows())
	plain.SpMV(want, xs)

	for _, f := range op.Formats {
		for _, shards := range []int{1, 2, 3, 5, 64} {
			t.Run(fmt.Sprintf("%v_shards%d", f, shards), func(t *testing.T) {
				o, err := New(plain, Options{
					Shards: shards,
					Format: f,
					Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64},
				})
				if err != nil {
					t.Fatal(err)
				}
				if o.Shards() != Clamp(plain.Rows(), shards) {
					t.Fatalf("Shards() = %d, want %d", o.Shards(), Clamp(plain.Rows(), shards))
				}
				x := core.VectorFromSlice(xs, core.None)
				dst := core.NewVector(o.Rows(), core.None)
				for _, workers := range []int{1, 4} {
					if err := o.Apply(dst, x, workers); err != nil {
						t.Fatal(err)
					}
					got := make([]float64, o.Rows())
					if err := dst.CopyTo(got); err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("workers=%d row %d: got %v want %v", workers, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestShardedCGMatchesUnsharded is the acceptance scenario: a sharded
// solve over a general MatrixMarket operator converges to the same
// solution and residual as the unsharded solve in all three formats.
func TestShardedCGMatchesUnsharded(t *testing.T) {
	plain := generalMatrix(t, 36)
	n := plain.Rows()
	bs := refVector(n)

	for _, f := range op.Formats {
		t.Run(f.String(), func(t *testing.T) {
			cfg := op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}
			single, err := op.New(f, plain, cfg)
			if err != nil {
				t.Fatal(err)
			}
			solve := func(m core.ProtectedMatrix) ([]float64, solvers.Result) {
				x := core.NewVector(n, core.SECDED64)
				b := core.VectorFromSlice(bs, core.SECDED64)
				res, err := solvers.CG(solvers.MatrixOperator{M: m, Workers: 2}, x, b, solvers.Options{Tol: 1e-10})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("no convergence in %d iterations (residual %g)", res.Iterations, res.ResidualNorm)
				}
				out := make([]float64, n)
				if err := x.CopyTo(out); err != nil {
					t.Fatal(err)
				}
				return out, res
			}
			ref, refRes := solve(single)

			sh, err := New(plain, Options{Shards: 3, Format: f, Config: cfg, VectorScheme: core.SECDED64})
			if err != nil {
				t.Fatal(err)
			}
			got, gotRes := solve(sh)
			for i := range ref {
				if math.Abs(got[i]-ref[i]) > 1e-7 {
					t.Fatalf("solution %d differs: %g vs %g", i, got[i], ref[i])
				}
			}
			if gotRes.ResidualNorm > 1e-10 || refRes.ResidualNorm > 1e-10 {
				t.Fatalf("residuals above tolerance: sharded %g, unsharded %g",
					gotRes.ResidualNorm, refRes.ResidualNorm)
			}
		})
	}
}

// TestShardedDiagonalMatchesReference checks Diagonal parity per format.
func TestShardedDiagonalMatchesReference(t *testing.T) {
	plain := generalMatrix(t, 25)
	want := make([]float64, plain.Rows())
	plain.Diagonal(want)
	for _, f := range op.Formats {
		o, err := New(plain, Options{Shards: 4, Format: f,
			Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, o.Rows())
		if err := o.Diagonal(got); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: diagonal %d: got %v want %v", f, i, got[i], want[i])
			}
		}
	}
}

// TestDotMatchesFlatKernel compares the tree-reduced inner product with
// the flat kernel.
func TestDotMatchesFlatKernel(t *testing.T) {
	plain := generalMatrix(t, 40)
	o, err := New(plain, Options{Shards: 5, Config: op.Config{Scheme: core.SECDED64}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	as := make([]float64, plain.Rows())
	bs := make([]float64, plain.Rows())
	for i := range as {
		as[i] = rng.NormFloat64()
		bs[i] = rng.NormFloat64()
	}
	a := core.VectorFromSlice(as, core.SECDED64)
	b := core.VectorFromSlice(bs, core.SECDED64)
	got, err := o.Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Dot(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("dot %g want %g", got, want)
	}
}

// TestExchangeDetectsHaloFlip corrupts a shard's resident local vector
// in a boundary entry after the scatter phase: the pack side of the
// halo exchange must detect it (SED) or transparently correct it
// (SECDED64) before the value crosses the shard boundary.
func TestExchangeDetectsHaloFlip(t *testing.T) {
	plain := generalMatrix(t, 32)
	xs := refVector(plain.Cols32())
	want := make([]float64, plain.Rows())
	plain.SpMV(want, xs)

	// Pick a boundary entry shard 0 packs: its first halo column, in
	// the owning shard's resident local vector.
	corrupt := func(o *Operator) (victim *core.Vector, elem int) {
		c := int(o.bands[0].haloCols[0])
		ow := o.owner(c)
		return o.Local(ow), c - o.bands[ow].r0
	}

	t.Run("sed-detects", func(t *testing.T) {
		o, err := New(plain, Options{Shards: 4, VectorScheme: core.SED,
			Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}})
		if err != nil {
			t.Fatal(err)
		}
		var c core.Counters
		o.SetCounters(&c)
		o.SetPhaseHook(func(p Phase) {
			if p == PhaseScatter {
				v, elem := corrupt(o)
				v.Raw()[elem] ^= 1 << 33
			}
		})
		x := core.VectorFromSlice(xs, core.None)
		dst := core.NewVector(o.Rows(), core.None)
		err = o.Apply(dst, x, 1)
		var fe *core.FaultError
		if err == nil || !errors.As(err, &fe) {
			t.Fatalf("halo flip crossed the boundary silently: %v", err)
		}
		if !strings.Contains(err.Error(), "pack") {
			t.Fatalf("fault not attributed to the exchange pack: %v", err)
		}
		if c.Detected() == 0 {
			t.Fatal("detection not counted")
		}
	})

	t.Run("secded64-corrects", func(t *testing.T) {
		o, err := New(plain, Options{Shards: 4, VectorScheme: core.SECDED64,
			Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}})
		if err != nil {
			t.Fatal(err)
		}
		var c core.Counters
		o.SetCounters(&c)
		o.SetPhaseHook(func(p Phase) {
			if p == PhaseScatter {
				v, elem := corrupt(o)
				v.Raw()[elem] ^= 1 << 33
			}
		})
		x := core.VectorFromSlice(xs, core.None)
		dst := core.NewVector(o.Rows(), core.None)
		if err := o.Apply(dst, x, 1); err != nil {
			t.Fatalf("single flip should be corrected in flight: %v", err)
		}
		if c.Corrected() == 0 {
			t.Fatal("correction not counted")
		}
		got := make([]float64, o.Rows())
		if err := dst.CopyTo(got); err != nil {
			t.Fatal(err)
		}
		mask := core.NewVector(4, core.SECDED64).Mask
		for i := range want {
			if diff := math.Abs(got[i] - want[i]); diff > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("row %d: %g want %g (mask %g)", i, got[i], want[i], mask(want[i]))
			}
		}
	})
}

// TestShardedScrubRepairsFlip flips a bit inside one shard's matrix:
// Scrub must repair it and count it, leaving the operator clean.
func TestShardedScrubRepairsFlip(t *testing.T) {
	plain := generalMatrix(t, 28)
	for _, f := range op.Formats {
		o, err := New(plain, Options{Shards: 3, Format: f,
			Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}})
		if err != nil {
			t.Fatal(err)
		}
		var c core.Counters
		o.SetCounters(&c)
		v := o.Shard(1).RawVals()
		v[0] = math.Float64frombits(math.Float64bits(v[0]) ^ 1<<40)
		corrected, err := o.Scrub()
		if err != nil || corrected != 1 {
			t.Fatalf("%v: scrub corrected=%d err=%v", f, corrected, err)
		}
		if again, err := o.Scrub(); err != nil || again != 0 {
			t.Fatalf("%v: repair not committed: corrected=%d err=%v", f, again, err)
		}
	}
}

// TestShardedToCSRRoundTrip checks the global decode against the source
// for every format (SECDED64 adds no structural padding, so the decode
// is exact).
func TestShardedToCSRRoundTrip(t *testing.T) {
	plain := generalMatrix(t, 26)
	for _, f := range op.Formats {
		o, err := New(plain, Options{Shards: 3, Format: f,
			Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.ToCSR()
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if got.Rows() != plain.Rows() || got.NNZ() != plain.NNZ() {
			t.Fatalf("%v: decode %dx? nnz %d, want %d nnz %d", f, got.Rows(), got.NNZ(), plain.Rows(), plain.NNZ())
		}
		for i := range plain.Vals {
			if got.Cols[i] != plain.Cols[i] || got.Vals[i] != plain.Vals[i] {
				t.Fatalf("%v: entry %d differs", f, i)
			}
		}
	}
}

// TestApplyValidation covers dimension checking and halo bookkeeping.
func TestApplyValidation(t *testing.T) {
	plain := generalMatrix(t, 20)
	o, err := New(plain, Options{Shards: 2, Config: op.Config{Scheme: core.SECDED64}})
	if err != nil {
		t.Fatal(err)
	}
	rect, err := csr.New(8, 12, []csr.Entry{{Row: 0, Col: 11, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(rect, Options{Shards: 2}); err == nil {
		t.Fatal("rectangular matrix accepted: halo columns beyond the row bands have no owner")
	}
	bad := core.NewVector(3, core.None)
	good := core.NewVector(o.Rows(), core.None)
	if err := o.Apply(good, bad, 1); err == nil {
		t.Fatal("short x accepted")
	}
	if err := o.Apply(bad, good, 1); err == nil {
		t.Fatal("short dst accepted")
	}
	if lo, hi := o.HaloRange(0); hi <= lo {
		t.Fatal("shard 0 has no halo on a coupled matrix")
	}
	if r0, r1 := o.ShardRange(1); r0%4 != 0 || r1 != o.Rows() {
		t.Fatalf("unexpected shard range [%d,%d)", r0, r1)
	}
}

// TestConcurrentApplySharedOperator exercises the service's pattern:
// many jobs solving over one cached sharded operator in shared mode,
// concurrently. Workspaces come from the pool, so the products proceed
// in parallel and every caller gets the exact reference result.
func TestConcurrentApplySharedOperator(t *testing.T) {
	plain := generalMatrix(t, 40)
	o, err := New(plain, Options{Shards: 3,
		Config:       op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64},
		VectorScheme: core.SECDED64})
	if err != nil {
		t.Fatal(err)
	}
	var c core.Counters
	o.SetCounters(&c)
	o.SetShared(true)

	xs := refVector(plain.Cols32())
	want := make([]float64, plain.Rows())
	plain.SpMV(want, xs)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := core.VectorFromSlice(xs, core.None)
			dst := core.NewVector(o.Rows(), core.None)
			got := make([]float64, o.Rows())
			for iter := 0; iter < 5; iter++ {
				if err := o.Apply(dst, x, 2); err != nil {
					errs[g] = err
					return
				}
				if err := dst.CopyTo(got); err != nil {
					errs[g] = err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs[g] = fmt.Errorf("row %d: got %v want %v", i, got[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestBandRangesBlockAligned pins the invariant the band-parallel
// consumers of the decomposition (block-Jacobi preconditioners, the
// solver recovery controller's per-band checkpoints) rely on: band
// boundaries tile [0, rows) contiguously and every interior boundary is
// a multiple of the protection codeword block.
func TestBandRangesBlockAligned(t *testing.T) {
	for _, shards := range []int{2, 3, 7} {
		o, err := New(csr.Laplacian2D(11, 9), Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		ranges := o.BandRanges()
		if len(ranges) != o.Shards() {
			t.Fatalf("shards=%d: %d ranges for %d bands", shards, len(ranges), o.Shards())
		}
		next := 0
		for i, r := range ranges {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("shards=%d: range %d = %v does not tile from %d", shards, i, r, next)
			}
			if r[0]%blockLen != 0 {
				t.Fatalf("shards=%d: boundary %d not aligned to the codeword block", shards, r[0])
			}
			next = r[1]
		}
		if next != o.Rows() {
			t.Fatalf("shards=%d: ranges end at %d, want %d", shards, next, o.Rows())
		}
	}
}
