package shard

import (
	"fmt"
	"math"
	"testing"

	"abft/internal/core"
	"abft/internal/op"
)

// batchInputs builds k deterministic columns plus an empty per-column
// reference slot for the caller to fill from the unprotected source.
func batchInputs(t *testing.T, n, k int) (x *core.MultiVector, want [][]float64) {
	t.Helper()
	cols := make([]*core.Vector, k)
	for j := 0; j < k; j++ {
		xs := refVector(n)
		for i := range xs {
			xs[i] += float64(j) / 4
		}
		cols[j] = core.VectorFromSlice(xs, core.None)
	}
	mv, err := core.WrapMultiVector(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return mv, make([][]float64, k)
}

// TestShardedApplyBatchMatchesApply: the batched bulk-synchronous
// pipeline — scatter, k-column halo exchange, per-format batched local
// kernels, gather — is bit-identical to k independent Apply calls for
// every local format. A second pass over the same operator reuses the
// pooled batch workspace.
func TestShardedApplyBatchMatchesApply(t *testing.T) {
	for _, f := range op.Formats {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v_workers=%d", f, workers), func(t *testing.T) {
				plain := generalMatrix(t, 30)
				const k = 3
				x, want := batchInputs(t, int(plain.Cols32()), k)
				for j := 0; j < k; j++ {
					xs := make([]float64, plain.Cols32())
					if err := x.Col(j).CopyTo(xs); err != nil {
						t.Fatal(err)
					}
					want[j] = make([]float64, plain.Rows())
					plain.SpMV(want[j], xs)
				}

				o, err := New(plain, Options{
					Shards: 3,
					Format: f,
					Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64},
				})
				if err != nil {
					t.Fatal(err)
				}
				var c core.Counters
				o.SetCounters(&c)

				// Two passes: the second pulls the pooled workspace back
				// out instead of allocating a fresh one.
				for pass := 0; pass < 2; pass++ {
					dst := core.NewMultiVector(o.Rows(), k, core.None)
					if err := o.ApplyBatch(dst, x, workers); err != nil {
						t.Fatalf("pass %d: %v", pass, err)
					}
					got := make([]float64, o.Rows())
					for j := 0; j < k; j++ {
						if err := dst.Col(j).CopyTo(got); err != nil {
							t.Fatal(err)
						}
						for i := range want[j] {
							if got[i] != want[j][i] {
								t.Fatalf("pass %d col %d row %d: got %v want %v (batched product diverged)",
									pass, j, i, got[i], want[j][i])
							}
						}
					}
				}
				if c.Checks() == 0 {
					t.Fatal("batched pipeline recorded no verified reads")
				}
			})
		}
	}
}

// TestShardedApplyBatchFallback is the batched counterpart of the
// sharded verify-then-stream conformance: a codeword corrupted inside
// one shard's batch-verified block must degrade to the corrective
// per-element decode (shared mode) or be repaired in place (exclusive
// mode), and in both modes every column of the composite batched
// product stays bit-exact against the unprotected reference.
func TestShardedApplyBatchFallback(t *testing.T) {
	for _, f := range op.Formats {
		for _, shared := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v_shared=%v", f, shared), func(t *testing.T) {
				plain := generalMatrix(t, 30)
				const k = 3
				x, want := batchInputs(t, int(plain.Cols32()), k)
				for j := 0; j < k; j++ {
					xs := make([]float64, plain.Cols32())
					if err := x.Col(j).CopyTo(xs); err != nil {
						t.Fatal(err)
					}
					want[j] = make([]float64, plain.Rows())
					plain.SpMV(want[j], xs)
				}

				o, err := New(plain, Options{
					Shards: 3,
					Format: f,
					Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64},
				})
				if err != nil {
					t.Fatal(err)
				}
				var c core.Counters
				o.SetCounters(&c)
				o.SetShared(shared)

				v := o.Shard(1).RawVals()
				i := len(v) / 2
				v[i] = math.Float64frombits(math.Float64bits(v[i]) ^ 1<<40)

				dst := core.NewMultiVector(o.Rows(), k, core.None)
				if err := o.ApplyBatch(dst, x, 3); err != nil {
					t.Fatal(err)
				}
				got := make([]float64, o.Rows())
				for j := 0; j < k; j++ {
					if err := dst.Col(j).CopyTo(got); err != nil {
						t.Fatal(err)
					}
					for r := range want[j] {
						if got[r] != want[j][r] {
							t.Fatalf("col %d row %d: got %v want %v (fallback diverged from reference)",
								j, r, got[r], want[j][r])
						}
					}
				}
				if c.Corrected() == 0 {
					t.Fatal("no correction recorded for the injected flip")
				}

				o.SetShared(false)
				corrected, err := o.Scrub()
				if err != nil {
					t.Fatalf("scrub: %v", err)
				}
				if shared && corrected == 0 {
					t.Fatal("shared ApplyBatch committed a repair to shard storage")
				}
				if !shared && corrected != 0 {
					t.Fatalf("exclusive ApplyBatch left the fault in shard storage (%d late corrections)", corrected)
				}
			})
		}
	}
}

// TestShardedApplyBatchShapeErrors: dimension and width mismatches are
// rejected before the pipeline starts.
func TestShardedApplyBatchShapeErrors(t *testing.T) {
	plain := generalMatrix(t, 20)
	o, err := New(plain, Options{Shards: 2, Config: op.Config{Scheme: core.SECDED64}})
	if err != nil {
		t.Fatal(err)
	}
	x := core.NewMultiVector(int(plain.Cols32()), 2, core.None)
	short := core.NewMultiVector(o.Rows()+4, 2, core.None)
	if err := o.ApplyBatch(short, x, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	wide := core.NewMultiVector(o.Rows(), 3, core.None)
	if err := o.ApplyBatch(wide, x, 1); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
