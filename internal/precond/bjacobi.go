package precond

import (
	"fmt"
	"math"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/par"
)

// blockJacobiPre is the block-Jacobi preconditioner over the codeword
// blocks: the diagonal 4x4 blocks of A (the protected vectors' codeword
// granularity, so no block ever straddles two ECC groups) are densely
// inverted at setup and the inverses stored row-by-row in one
// codeword-protected vector. Apply solves every block system with four
// verified reads per block and runs band-parallel; over a sharded
// operator the bands follow the shard decomposition, so the
// preconditioner applies per-band on goroutines matching the shard
// layout.
type blockJacobiPre struct {
	rows int
	// inv holds the block inverses: vector block 4*b+i is row i of
	// diagonal block b's inverse.
	inv   *core.Vector
	bands [][2]int
	mode  core.ReadMode
	applies
	counters *core.Counters
}

func newBlockJacobi(src *csr.Matrix, opt Options) (*blockJacobiPre, error) {
	n := src.Rows()
	nb := (n + blockLen - 1) / blockLen
	blocks := make([][blockLen][blockLen]float64, nb)
	// Padding rows beyond n get an identity diagonal so every block
	// stays invertible; their solution components are never read.
	for b := range blocks {
		for i := 0; i < blockLen; i++ {
			if b*blockLen+i >= n {
				blocks[b][i][i] = 1
			}
		}
	}
	for r := 0; r < n; r++ {
		b, i := r/blockLen, r%blockLen
		for k := src.RowPtr[r]; k < src.RowPtr[r+1]; k++ {
			if c := int(src.Cols[k]); c/blockLen == b {
				blocks[b][i][c%blockLen] += src.Vals[k]
			}
		}
	}
	flat := make([]float64, nb*blockLen*blockLen)
	for b := range blocks {
		if !invertBlock(&blocks[b]) {
			return nil, fmt.Errorf("precond: singular diagonal block at rows [%d,%d)",
				b*blockLen, b*blockLen+blockLen)
		}
		for i := 0; i < blockLen; i++ {
			copy(flat[(b*blockLen+i)*blockLen:], blocks[b][i][:])
		}
	}
	inv := core.VectorFromSlice(flat, opt.Scheme)
	inv.SetCRCBackend(opt.Backend)

	bands := opt.Bands
	if len(bands) == 0 {
		bands = par.Ranges(n, opt.Workers, blockLen)
	}
	// The bands must tile [0, rows) exactly: a gap leaves z rows
	// unwritten (a silently singular preconditioner), an overlap races
	// concurrent writes of one codeword block.
	next := 0
	for _, bd := range bands {
		if bd[0]%blockLen != 0 {
			return nil, fmt.Errorf("precond: band start %d not aligned to the codeword block", bd[0])
		}
		if bd[0] != next || bd[1] <= bd[0] {
			return nil, fmt.Errorf("precond: bands must tile [0,%d) contiguously; got band [%d,%d) after row %d",
				n, bd[0], bd[1], next)
		}
		next = bd[1]
	}
	if next != n {
		return nil, fmt.Errorf("precond: bands cover [0,%d) of %d rows", next, n)
	}
	return &blockJacobiPre{rows: n, inv: inv, bands: bands}, nil
}

// invertBlock inverts a dense block in place by Gauss-Jordan
// elimination with partial pivoting; it reports false for a singular
// (or numerically singular) block.
func invertBlock(a *[blockLen][blockLen]float64) bool {
	var inv [blockLen][blockLen]float64
	for i := range inv {
		inv[i][i] = 1
	}
	for col := 0; col < blockLen; col++ {
		pivot := col
		for r := col + 1; r < blockLen; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return false
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		p := a[col][col]
		for j := 0; j < blockLen; j++ {
			a[col][j] /= p
			inv[col][j] /= p
		}
		for r := 0; r < blockLen; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < blockLen; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	*a = inv
	return true
}

// Apply computes z = M^-1 r band-parallel: every codeword block's
// system is solved with the protected precomputed inverse.
func (p *blockJacobiPre) Apply(z, r *core.Vector) error {
	if z.Len() != p.rows || r.Len() != p.rows {
		return fmt.Errorf("precond: bjacobi Apply length mismatch: z %d, r %d, rows %d",
			z.Len(), r.Len(), p.rows)
	}
	p.bump()
	return par.Run(p.bands, func(lo, hi int) error {
		var rv, out [blockLen]float64
		// One diagonal block's inverse spans four consecutive vector
		// blocks, so the whole 4x4 inverse is batch-verified in a single
		// ReadBlocks call instead of four per-row reads.
		var iv [blockLen * blockLen]float64
		readInv := p.inv.ReadBlocksInto
		switch p.mode {
		case core.ModeShared:
			readInv = p.inv.ReadBlocksSharedInto
		case core.ModeUnverified:
			readInv = p.inv.ReadBlocksUnverifiedInto
		}
		b0 := lo / blockLen
		nb := (hi - lo + blockLen - 1) / blockLen
		vecChecks(r, nb)
		for blk := b0; blk < b0+nb; blk++ {
			if err := r.ReadBlock(blk, &rv); err != nil {
				return err
			}
			if err := readInv(blk*blockLen, (blk+1)*blockLen, iv[:]); err != nil {
				return err
			}
			for i := 0; i < blockLen; i++ {
				row := iv[i*blockLen:]
				out[i] = row[0]*rv[0] + row[1]*rv[1] + row[2]*rv[2] + row[3]*rv[3]
			}
			z.WriteBlock(blk, &out)
		}
		return nil
	})
}

// Rows returns the operator dimension.
func (p *blockJacobiPre) Rows() int { return p.rows }

// Kind names the algorithm.
func (p *blockJacobiPre) Kind() Kind { return BlockJacobi }

// Bands returns the band decomposition Apply parallelises over.
func (p *blockJacobiPre) Bands() [][2]int { return p.bands }

// Scrub patrols the protected inverse-block storage.
func (p *blockJacobiPre) Scrub() (int, error) { return p.inv.CheckAll() }

// Stats reports apply counts and integrity statistics.
func (p *blockJacobiPre) Stats() Stats {
	return Stats{Applies: p.n.Load(), Counters: p.counters.Snapshot()}
}

// SetCounters attaches a statistics accumulator to the state vector.
func (p *blockJacobiPre) SetCounters(c *core.Counters) {
	p.counters = c
	p.inv.SetCounters(c)
}

// SetReadMode selects the read discipline for the protected state.
func (p *blockJacobiPre) SetReadMode(mode core.ReadMode) { p.mode = mode }

// SetShared is the deprecated boolean precursor of SetReadMode.
//
// Deprecated: use SetReadMode.
func (p *blockJacobiPre) SetShared(shared bool) { p.SetReadMode(sharedMode(shared)) }

// RawState exposes the protected inverse blocks for fault injection.
func (p *blockJacobiPre) RawState() []*core.Vector { return []*core.Vector{p.inv} }
