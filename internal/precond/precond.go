// Package precond implements ECC-protected preconditioners for the
// iterative solvers. Elliott, Hoemmen and Mueller ("Tolerating Silent
// Data Corruption in Opaque Preconditioners") observe that the
// preconditioner is exactly where silent corruption hides in a
// production solve: its setup product is resident state, streamed every
// iteration, and — unlike the system matrix — usually left unprotected.
// This package closes that gap with the repository's embedded-ECC
// discipline: every preconditioner stores its setup product (inverse
// diagonals, inverse diagonal blocks, triangular factors) in
// codeword-protected storage, verifies it on every read, repairs what
// its scheme can correct, and exposes a Scrub patrol so resident
// preconditioners are swept exactly like cached matrices.
//
// Three implementations cover the classic spectrum:
//
//   - Jacobi: a protected inverse-diagonal vector, z = D^-1 r.
//   - Block-Jacobi: protected dense inverses of the diagonal blocks
//     aligned to the vector codeword blocks, applied band-parallel; over
//     a sharded operator the bands follow the shard decomposition.
//   - Symmetric Gauss-Seidel: forward and backward triangular sweeps
//     through a protected CSR copy of the operator,
//     z = (D+U)^-1 D (D+L)^-1 r.
//
// All three satisfy solvers.Options.Preconditioner, so CG, PCG and the
// preconditioned Chebyshev smoother use them unchanged.
package precond

import (
	"fmt"
	"strings"
	"sync/atomic"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/ecc"
)

// Kind names a preconditioner algorithm.
type Kind int

const (
	// None disables preconditioning (plain CG).
	None Kind = iota
	// Jacobi scales by the protected inverse diagonal.
	Jacobi
	// BlockJacobi solves the codeword-block diagonal systems with
	// protected precomputed inverses.
	BlockJacobi
	// SGS runs protected symmetric Gauss-Seidel sweeps.
	SGS
)

// Kinds lists every preconditioner in display order.
var Kinds = []Kind{None, Jacobi, BlockJacobi, SGS}

// ProtectingKinds lists the kinds that build a preconditioner (every
// kind but None), for sweeps in benchmarks and conformance tests.
var ProtectingKinds = []Kind{Jacobi, BlockJacobi, SGS}

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Jacobi:
		return "jacobi"
	case BlockJacobi:
		return "bjacobi"
	case SGS:
		return "sgs"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a preconditioner name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none", "":
		return None, nil
	case "jacobi":
		return Jacobi, nil
	case "bjacobi", "block-jacobi", "blockjacobi":
		return BlockJacobi, nil
	case "sgs", "gauss-seidel":
		return SGS, nil
	default:
		return None, fmt.Errorf("precond: unknown preconditioner %q (choices: %s)", s, KindNames())
	}
}

// KindNames returns the registered preconditioner names as a
// comma-separated list, for error messages and command-line help.
func KindNames() string {
	names := make([]string, len(Kinds))
	for i, k := range Kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ", ")
}

// Options configures a preconditioner build.
type Options struct {
	// Scheme protects the preconditioner's setup product (state vectors
	// and, for SGS, the protected matrix copy).
	Scheme core.Scheme
	// Backend selects the CRC32C implementation.
	Backend ecc.Backend
	// Workers is the Apply goroutine count (Jacobi and block-Jacobi;
	// Gauss-Seidel sweeps are inherently sequential).
	Workers int
	// Bands, when set, are the block-aligned row ranges block-Jacobi
	// applies band-parallel — typically a sharded operator's
	// decomposition (shard.Operator.BandRanges), so the preconditioner
	// runs per-band on goroutines matching the shard layout. Empty
	// bands derive from Workers.
	Bands [][2]int
}

// Stats is a point-in-time summary of preconditioner activity.
type Stats struct {
	// Applies counts Apply calls performed.
	Applies uint64
	// Counters snapshots the integrity-check statistics of the
	// protected preconditioner state.
	Counters core.CounterSnapshot
}

// Preconditioner is an ECC-protected preconditioner: Apply computes
// z = M^-1 r through codeword-verified state, Scrub patrols that state
// like a cached matrix, and RawState exposes the protected storage to
// fault injectors. Implementations satisfy solvers.Preconditioner.
type Preconditioner interface {
	// Apply computes z = M^-1 r, verifying every preconditioner
	// codeword it streams.
	Apply(z, r *core.Vector) error
	// Rows returns the operator dimension the preconditioner was built
	// for.
	Rows() int
	// Kind names the algorithm.
	Kind() Kind
	// Scrub verifies and repairs every codeword of the preconditioner
	// state, returning the number of corrections and the first
	// uncorrectable error — the patrol contract of
	// core.ProtectedMatrix.Scrub.
	Scrub() (corrected int, err error)
	// Stats reports apply counts and integrity-check statistics.
	Stats() Stats
	// SetCounters attaches a statistics accumulator (shared or nil).
	SetCounters(*core.Counters)
	// SetReadMode selects the read discipline for the protected state.
	// ModeShared marks the preconditioner as applied concurrently:
	// Apply then never commits corrections to the protected state,
	// leaving repair to Scrub, which the owner serializes against
	// Apply. ModeUnverified skips state-codeword decode entirely. Set
	// before the preconditioner becomes visible to other goroutines.
	SetReadMode(core.ReadMode)
	// SetShared is the deprecated boolean precursor of SetReadMode:
	// true maps to ModeShared, false to ModeExclusive.
	//
	// Deprecated: use SetReadMode.
	SetShared(bool)
	// RawState exposes the protected state vectors for fault
	// injection; bits flipped in their raw storage model soft errors
	// striking resident preconditioner memory.
	RawState() []*core.Vector
}

// New builds a preconditioner of the given kind for the operator src
// describes. The setup reads the unprotected assembly source (exactly
// like protected-matrix construction); the product is stored protected
// under opt.Scheme.
func New(kind Kind, src *csr.Matrix, opt Options) (Preconditioner, error) {
	if src.Rows() != src.Cols32() {
		return nil, fmt.Errorf("precond: matrix is %dx%d; preconditioners need a square operator",
			src.Rows(), src.Cols32())
	}
	switch kind {
	case Jacobi:
		return newJacobi(src, opt)
	case BlockJacobi:
		return newBlockJacobi(src, opt)
	case SGS:
		return newSGS(src, opt)
	case None:
		return nil, fmt.Errorf("precond: kind none builds no preconditioner")
	default:
		return nil, fmt.Errorf("precond: unknown kind %v", kind)
	}
}

// BandedOperator is the capability a sharded operator exposes so
// block-Jacobi can align its bands to the shard decomposition.
type BandedOperator interface {
	BandRanges() [][2]int
}

// For builds a preconditioner for an already-built protected operator
// m assembled from src: block-Jacobi inherits a sharded operator's band
// decomposition so its per-band applications run on goroutines matching
// the shard layout.
func For(kind Kind, m core.ProtectedMatrix, src *csr.Matrix, opt Options) (Preconditioner, error) {
	if kind == BlockJacobi && len(opt.Bands) == 0 {
		if b, ok := m.(BandedOperator); ok {
			opt.Bands = b.BandRanges()
		}
	}
	return New(kind, src, opt)
}

// invertDiagonal extracts and inverts the main diagonal of src.
func invertDiagonal(src *csr.Matrix) ([]float64, error) {
	d := make([]float64, src.Rows())
	src.Diagonal(d)
	for i, x := range d {
		if x == 0 {
			return nil, fmt.Errorf("precond: zero diagonal at row %d", i)
		}
		d[i] = 1 / x
	}
	return d, nil
}

// blockLen is the protected-vector codeword block (core's vecBlock):
// the granularity of all state reads and of block-Jacobi's blocks.
const blockLen = 4

// readBlk reads one block of a protected state vector under the given
// read discipline: verified with repairs committed only when the
// preconditioner is exclusively owned, streamed without decode under
// ModeUnverified.
func readBlk(v *core.Vector, blk int, dst *[blockLen]float64, mode core.ReadMode) error {
	switch mode {
	case core.ModeUnverified:
		v.ReadBlockNoCheck(blk, dst)
		return nil
	case core.ModeShared:
		return v.ReadBlockShared(blk, dst)
	default:
		return v.ReadBlock(blk, dst)
	}
}

// vecChecks batches blocks verified reads into v's counters, mirroring
// the kernels' per-call accounting.
func vecChecks(v *core.Vector, blocks int) {
	if s := v.Scheme(); s != core.None {
		v.Counters().AddChecks(uint64(blocks) * uint64(blockLen/s.VecGroup()))
	}
}

// decode reads the whole state vector into dst (len >= v.Len()) under
// the given read discipline: batch-verified (respecting the shared
// no-commit rule) for the verifying modes, a raw masked-payload stream
// under ModeUnverified. Blocks fully covered by dst go through one
// ReadBlocks sweep; only a partial tail block falls back to a buffered
// per-block read.
func decode(v *core.Vector, dst []float64, mode core.ReadMode) error {
	nb := v.Blocks()
	full := len(dst) / blockLen
	if full > nb {
		full = nb
	}
	read := v.ReadBlocksInto
	switch mode {
	case core.ModeShared:
		read = v.ReadBlocksSharedInto
	case core.ModeUnverified:
		read = v.ReadBlocksUnverifiedInto
	}
	if err := read(0, full, dst[:full*blockLen]); err != nil {
		return err
	}
	var buf [blockLen]float64
	if mode.Verifies() {
		vecChecks(v, nb-full)
	}
	for b := full; b < nb; b++ {
		if err := readBlk(v, b, &buf, mode); err != nil {
			return err
		}
		lo := b * blockLen
		for i := 0; i < blockLen && lo+i < len(dst); i++ {
			dst[lo+i] = buf[i]
		}
	}
	return nil
}

// sharedMode maps the deprecated SetShared boolean to its ReadMode.
func sharedMode(shared bool) core.ReadMode {
	if shared {
		return core.ModeShared
	}
	return core.ModeExclusive
}

// applies is the shared Apply counter every implementation embeds.
type applies struct{ n atomic.Uint64 }

func (a *applies) bump() { a.n.Add(1) }
