package precond

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/op"
	"abft/internal/shard"
	"abft/internal/solvers"
)

func testMatrix() *csr.Matrix { return csr.Laplacian2D(12, 9) }

func refVector(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((i*13)%29) - 14 + float64(i%7)/8
	}
	return out
}

// refApply computes the unprotected reference application of each kind.
func refApply(t *testing.T, kind Kind, src *csr.Matrix, r []float64) []float64 {
	t.Helper()
	n := src.Rows()
	diag := make([]float64, n)
	src.Diagonal(diag)
	z := make([]float64, n)
	switch kind {
	case Jacobi:
		for i := range z {
			z[i] = r[i] / diag[i]
		}
	case BlockJacobi:
		// Solve each 4x4 diagonal block densely by Gaussian elimination
		// against the reference (re-derived independently of the
		// implementation's stored inverses).
		for b := 0; b*4 < n; b++ {
			var a [4][4]float64
			var rhs [4]float64
			for i := 0; i < 4; i++ {
				gi := b*4 + i
				if gi >= n {
					a[i][i] = 1
					continue
				}
				rhs[i] = r[gi]
				for k := src.RowPtr[gi]; k < src.RowPtr[gi+1]; k++ {
					if c := int(src.Cols[k]); c/4 == b {
						a[i][c%4] += src.Vals[k]
					}
				}
			}
			if !invertBlock(&a) {
				t.Fatal("reference block not invertible")
			}
			for i := 0; i < 4; i++ {
				if gi := b*4 + i; gi < n {
					z[gi] = a[i][0]*rhs[0] + a[i][1]*rhs[1] + a[i][2]*rhs[2] + a[i][3]*rhs[3]
				}
			}
		}
	case SGS:
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := r[i]
			for k := src.RowPtr[i]; k < src.RowPtr[i+1]; k++ {
				if c := int(src.Cols[k]); c < i {
					s -= src.Vals[k] * y[c]
				}
			}
			y[i] = s / diag[i]
		}
		for i := n - 1; i >= 0; i-- {
			var s float64
			for k := src.RowPtr[i]; k < src.RowPtr[i+1]; k++ {
				if c := int(src.Cols[k]); c > i {
					s += src.Vals[k] * z[c]
				}
			}
			z[i] = y[i] - s/diag[i]
		}
	}
	return z
}

func forEachKindScheme(t *testing.T, fn func(t *testing.T, k Kind, s core.Scheme)) {
	t.Helper()
	for _, k := range ProtectingKinds {
		for _, s := range core.Schemes {
			t.Run(fmt.Sprintf("%v_%v", k, s), func(t *testing.T) { fn(t, k, s) })
		}
	}
}

// TestApplyMatchesReference: every kind x scheme pair must reproduce the
// unprotected reference application bit-for-bit (state values are stored
// exactly; only mantissa LSBs reserved by vector schemes differ, and the
// state vectors reserve none of the bits these references exercise).
func TestApplyMatchesReference(t *testing.T) {
	forEachKindScheme(t, func(t *testing.T, k Kind, s core.Scheme) {
		src := testMatrix()
		rs := refVector(src.Rows())
		p, err := New(k, src, Options{Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		if p.Rows() != src.Rows() || p.Kind() != k {
			t.Fatalf("identity: rows %d kind %v", p.Rows(), p.Kind())
		}
		want := refApply(t, k, src, rs)
		for _, workers := range []int{1, 4} {
			p2 := p
			if workers > 1 {
				if p2, err = New(k, src, Options{Scheme: s, Workers: workers}); err != nil {
					t.Fatal(err)
				}
			}
			r := core.VectorFromSlice(rs, core.None)
			z := core.NewVector(src.Rows(), core.None)
			if err := p2.Apply(z, r); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			got := make([]float64, src.Rows())
			if err := z.CopyTo(got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-11*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("workers=%d row %d: got %v want %v", workers, i, got[i], want[i])
				}
			}
		}
	})
}

// TestSingleFlipHandled pins the paper's capability floor on the
// preconditioner state: one bit flip in the protected setup product is
// detected by SED and corrected in place by SECDED64/SECDED128/CRC32C.
func TestSingleFlipHandled(t *testing.T) {
	forEachKindScheme(t, func(t *testing.T, k Kind, s core.Scheme) {
		if s == core.None {
			t.Skip("baseline has no protection")
		}
		src := testMatrix()
		p, err := New(k, src, Options{Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		var c core.Counters
		p.SetCounters(&c)
		st := p.RawState()[0]
		// A mid-mantissa data bit every vector scheme protects.
		st.Raw()[0] ^= 1 << 40

		r := core.VectorFromSlice(refVector(src.Rows()), core.None)
		z := core.NewVector(src.Rows(), core.None)
		applyErr := p.Apply(z, r)
		if s == core.SED {
			var fe *core.FaultError
			if applyErr == nil || !errors.As(applyErr, &fe) {
				t.Fatalf("SED did not detect: %v", applyErr)
			}
			return
		}
		if applyErr != nil {
			t.Fatalf("correctable flip surfaced as error: %v", applyErr)
		}
		if c.Corrected() == 0 {
			t.Fatal("no correction recorded")
		}
		// The repair must be committed: a scrub finds clean state.
		if corrected, err := p.Scrub(); err != nil || corrected != 0 {
			t.Fatalf("repair not committed: corrected=%d err=%v", corrected, err)
		}
		if st := p.Stats(); st.Applies != 1 || st.Counters.Corrected == 0 {
			t.Fatalf("stats did not record activity: %+v", st)
		}
	})
}

// TestDoubleFlipDetected: two flips in one SECDED64 codeword of the
// state must surface as a detected fault, not silent corruption.
func TestDoubleFlipDetected(t *testing.T) {
	for _, k := range ProtectingKinds {
		t.Run(k.String(), func(t *testing.T) {
			src := testMatrix()
			p, err := New(k, src, Options{Scheme: core.SECDED64})
			if err != nil {
				t.Fatal(err)
			}
			var c core.Counters
			p.SetCounters(&c)
			p.RawState()[0].Raw()[0] ^= 1<<40 | 1<<41

			r := core.VectorFromSlice(refVector(src.Rows()), core.None)
			z := core.NewVector(src.Rows(), core.None)
			var fe *core.FaultError
			if err := p.Apply(z, r); err == nil || !errors.As(err, &fe) {
				t.Fatalf("double flip not detected: %v", err)
			}
			if fe.Structure != core.StructVector {
				t.Fatalf("unexpected structure %v", fe.Structure)
			}
			if c.Detected() == 0 {
				t.Fatal("detection not counted")
			}
		})
	}
}

// TestScrubRepairsState: a flip planted between applies is repaired by
// the patrol pass, the lifecycle cached preconditioners rely on.
func TestScrubRepairsState(t *testing.T) {
	for _, k := range ProtectingKinds {
		t.Run(k.String(), func(t *testing.T) {
			p, err := New(k, testMatrix(), Options{Scheme: core.SECDED64})
			if err != nil {
				t.Fatal(err)
			}
			var c core.Counters
			p.SetCounters(&c)
			p.RawState()[0].Raw()[0] ^= 1 << 40
			corrected, err := p.Scrub()
			if err != nil || corrected != 1 {
				t.Fatalf("scrub: corrected=%d err=%v", corrected, err)
			}
			if again, err := p.Scrub(); err != nil || again != 0 {
				t.Fatalf("second scrub found leftovers: corrected=%d err=%v", again, err)
			}
		})
	}
}

// TestSGSScrubCoversMatrix: the Gauss-Seidel patrol must cover the
// protected matrix copy, not only the inverse diagonal.
func TestSGSScrubCoversMatrix(t *testing.T) {
	p, err := New(SGS, testMatrix(), Options{Scheme: core.SECDED64})
	if err != nil {
		t.Fatal(err)
	}
	sgs := p.(*sgsPre)
	v := sgs.Matrix().RawVals()
	v[0] = math.Float64frombits(math.Float64bits(v[0]) ^ 1<<40)
	if corrected, err := p.Scrub(); err != nil || corrected != 1 {
		t.Fatalf("matrix flip not scrubbed: corrected=%d err=%v", corrected, err)
	}
}

// TestSharedModeLeavesRepairToScrub: in shared mode Apply uses the
// correction but must not commit it; the flip stays for Scrub.
func TestSharedModeLeavesRepairToScrub(t *testing.T) {
	for _, k := range ProtectingKinds {
		t.Run(k.String(), func(t *testing.T) {
			src := testMatrix()
			p, err := New(k, src, Options{Scheme: core.SECDED64})
			if err != nil {
				t.Fatal(err)
			}
			var c core.Counters
			p.SetCounters(&c)
			p.SetShared(true)
			p.RawState()[0].Raw()[0] ^= 1 << 40

			r := core.VectorFromSlice(refVector(src.Rows()), core.None)
			z := core.NewVector(src.Rows(), core.None)
			if err := p.Apply(z, r); err != nil {
				t.Fatal(err)
			}
			want := refApply(t, k, src, refVector(src.Rows()))
			got := make([]float64, src.Rows())
			if err := z.CopyTo(got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-11*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("shared apply row %d: got %v want %v", i, got[i], want[i])
				}
			}
			if corrected, err := p.Scrub(); err != nil || corrected != 1 {
				t.Fatalf("shared apply committed the repair: corrected=%d err=%v", corrected, err)
			}
		})
	}
}

// TestSGSSharedMatrixFlipCorrectedValuesUsed: in shared mode a
// correctable flip in the Gauss-Seidel matrix copy must not leak into
// the result — the row scanner streams locally corrected values — and
// the repair stays uncommitted for the patrol.
func TestSGSSharedMatrixFlipCorrectedValuesUsed(t *testing.T) {
	src := testMatrix()
	p, err := New(SGS, src, Options{Scheme: core.SECDED64})
	if err != nil {
		t.Fatal(err)
	}
	var c core.Counters
	p.SetCounters(&c)
	p.SetShared(true)
	v := p.(*sgsPre).Matrix().RawVals()
	v[0] = math.Float64frombits(math.Float64bits(v[0]) ^ 1<<40)

	rs := refVector(src.Rows())
	r := core.VectorFromSlice(rs, core.None)
	z := core.NewVector(src.Rows(), core.None)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	want := refApply(t, SGS, src, rs)
	got := make([]float64, src.Rows())
	if err := z.CopyTo(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-11*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("row %d: corrupted value leaked into shared apply: %v want %v", i, got[i], want[i])
		}
	}
	if c.Corrected() == 0 {
		t.Fatal("correction not counted")
	}
	if corrected, err := p.Scrub(); err != nil || corrected != 1 {
		t.Fatalf("shared apply committed the repair: corrected=%d err=%v", corrected, err)
	}
}

// TestPCGConvergesFaster: every preconditioner must cut PCG iterations
// below plain CG on the variable-coefficient TeaLeaf-style operator.
func TestPCGConvergesFaster(t *testing.T) {
	src := testMatrix()
	pm, err := op.New(op.CSR, src, op.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := solvers.MatrixOperator{M: pm, Workers: 1}
	solve := func(pre Preconditioner) solvers.Result {
		b := core.VectorFromSlice(refVector(src.Rows()), core.None)
		x := core.NewVector(src.Rows(), core.None)
		opt := solvers.Options{Tol: 1e-10, MaxIter: 10000}
		if pre != nil {
			opt.Preconditioner = pre
		}
		res, err := solvers.CG(a, x, b, opt)
		if err != nil || !res.Converged {
			t.Fatalf("solve: %v converged=%v", err, res.Converged)
		}
		return res
	}
	base := solve(nil)
	for _, k := range []Kind{BlockJacobi, SGS} {
		p, err := New(k, src, Options{Scheme: core.SECDED64})
		if err != nil {
			t.Fatal(err)
		}
		res := solve(p)
		if res.Iterations >= base.Iterations {
			t.Errorf("%v: %d iterations, plain CG %d", k, res.Iterations, base.Iterations)
		}
	}
}

// TestBlockJacobiShardBands: built over a sharded operator, block-Jacobi
// adopts the shard decomposition and still matches the unbanded result.
func TestBlockJacobiShardBands(t *testing.T) {
	src := testMatrix()
	sh, err := shard.New(src, shard.Options{Shards: 3, Format: op.CSR,
		Config: op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := For(BlockJacobi, sh, src, Options{Scheme: core.SECDED64})
	if err != nil {
		t.Fatal(err)
	}
	bj := p.(*blockJacobiPre)
	if len(bj.Bands()) != sh.Shards() {
		t.Fatalf("bands %d, shards %d", len(bj.Bands()), sh.Shards())
	}
	for i, b := range bj.Bands() {
		r0, r1 := sh.ShardRange(i)
		if b[0] != r0 || b[1] != r1 {
			t.Fatalf("band %d is [%d,%d), shard is [%d,%d)", i, b[0], b[1], r0, r1)
		}
	}
	rs := refVector(src.Rows())
	want := refApply(t, BlockJacobi, src, rs)
	r := core.VectorFromSlice(rs, core.None)
	z := core.NewVector(src.Rows(), core.None)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, src.Rows())
	if err := z.CopyTo(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-11*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestParseKind covers the registry contract: round trips and the
// choices-listing error convention.
func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: %v %v", k, got, err)
		}
	}
	_, err := ParseKind("ilu")
	if err == nil {
		t.Fatal("bogus kind accepted")
	}
	if want := "choices: none, jacobi, bjacobi, sgs"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not list %q", err, want)
	}
}

// TestRejectsBadInputs: non-square operators, zero diagonals and the
// none kind must fail loudly.
func TestRejectsBadInputs(t *testing.T) {
	rect, err := csr.New(4, 8, []csr.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 3, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Jacobi, rect, Options{}); err == nil {
		t.Fatal("rectangular operator accepted")
	}
	if _, err := New(None, testMatrix(), Options{}); err == nil {
		t.Fatal("kind none built a preconditioner")
	}
	zeroDiag, err := csr.New(4, 4, []csr.Entry{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 3, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Jacobi, zeroDiag, Options{}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
	// Block-Jacobi bands must tile [0, rows) exactly: a gap leaves z
	// rows unwritten, an overlap races concurrent block writes.
	src := testMatrix()
	for _, bands := range [][][2]int{
		{{0, 8}},                  // gap at the tail
		{{0, 8}, {4, src.Rows()}}, // overlap
		{{4, src.Rows()}},         // gap at the head
		{{0, 6}, {6, src.Rows()}}, // unaligned boundary
		{{0, src.Rows()}, {0, 0}}, // empty band
		{{0, src.Rows()}, {8, 4}}, // inverted band
	} {
		if _, err := New(BlockJacobi, src, Options{Bands: bands}); err == nil {
			t.Errorf("bands %v accepted", bands)
		}
	}
	if _, err := New(BlockJacobi, src, Options{Bands: [][2]int{{0, 8}, {8, src.Rows()}}}); err != nil {
		t.Errorf("valid bands rejected: %v", err)
	}
}
