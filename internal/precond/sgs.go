package precond

import (
	"fmt"
	"sync"

	"abft/internal/core"
	"abft/internal/csr"
)

// sgsScratch is one in-flight Apply's scanner and work arrays. Scratch
// sets are pooled so concurrent solves sharing one cached
// preconditioner (abftd applies it under the entry's shared lock)
// never serialize on a single sweep buffer: shared-mode scans write no
// matrix storage, so concurrent scanners are safe.
type sgsScratch struct {
	scan            *core.RowScanner
	rv, y, zv, invd []float64
}

// sgsPre is the symmetric Gauss-Seidel preconditioner
// z = (D+U)^-1 D (D+L)^-1 r: a forward and a backward triangular sweep
// through a codeword-protected CSR copy of the operator, plus a
// protected inverse diagonal. Both sweeps stream the matrix through
// core.RowScanner, so every element and row-pointer codeword is
// verified (and repaired where the scheme allows) on every application
// — the triangular factors are exactly as protected as the system
// matrix itself.
type sgsPre struct {
	rows int
	m    *core.Matrix
	inv  *core.Vector
	applies
	counters *core.Counters
	mode     core.ReadMode

	mu   sync.Mutex
	free []*sgsScratch
}

func newSGS(src *csr.Matrix, opt Options) (*sgsPre, error) {
	d, err := invertDiagonal(src)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMatrix(src, core.MatrixOptions{
		ElemScheme:   opt.Scheme,
		RowPtrScheme: opt.Scheme,
		Backend:      opt.Backend,
	})
	if err != nil {
		return nil, err
	}
	inv := core.VectorFromSlice(d, opt.Scheme)
	inv.SetCRCBackend(opt.Backend)
	return &sgsPre{rows: src.Rows(), m: m, inv: inv}, nil
}

// getScratch pops a pooled scratch set or allocates a fresh one when
// every pooled set is held by an in-flight Apply.
func (p *sgsPre) getScratch() *sgsScratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		ws := p.free[n-1]
		p.free = p.free[:n-1]
		return ws
	}
	return &sgsScratch{
		scan: p.m.NewRowScanner(),
		rv:   make([]float64, p.rows),
		y:    make([]float64, p.rows),
		zv:   make([]float64, p.rows),
		invd: make([]float64, p.rows),
	}
}

func (p *sgsPre) putScratch(ws *sgsScratch) {
	p.mu.Lock()
	p.free = append(p.free, ws)
	p.mu.Unlock()
}

// Apply computes z = (D+U)^-1 D (D+L)^-1 r with verified sweeps.
func (p *sgsPre) Apply(z, r *core.Vector) error {
	if z.Len() != p.rows || r.Len() != p.rows {
		return fmt.Errorf("precond: sgs Apply length mismatch: z %d, r %d, rows %d",
			z.Len(), r.Len(), p.rows)
	}
	p.bump()
	ws := p.getScratch()
	defer p.putScratch(ws)
	// A fresh sweep re-verifies codewords memoised by a previous one.
	ws.scan.Reset()
	if err := decode(p.inv, ws.invd, p.mode); err != nil {
		return err
	}
	if err := r.CopyTo(ws.rv); err != nil {
		return err
	}
	// Forward sweep: (D+L) y = r.
	for i := 0; i < p.rows; i++ {
		s := ws.rv[i]
		if err := ws.scan.Row(i, func(c int, v float64) {
			if c < i {
				s -= v * ws.y[c]
			}
		}); err != nil {
			return err
		}
		ws.y[i] = s * ws.invd[i]
	}
	// Backward sweep: (D+U) z = D y, i.e. z_i = y_i - D_i^-1 sum_{c>i} A_ic z_c.
	for i := p.rows - 1; i >= 0; i-- {
		var s float64
		if err := ws.scan.Row(i, func(c int, v float64) {
			if c > i {
				s += v * ws.zv[c]
			}
		}); err != nil {
			return err
		}
		ws.zv[i] = ws.y[i] - ws.invd[i]*s
	}
	var buf [blockLen]float64
	for blk := 0; blk*blockLen < p.rows; blk++ {
		lo := blk * blockLen
		for i := 0; i < blockLen; i++ {
			if lo+i < p.rows {
				buf[i] = ws.zv[lo+i]
			} else {
				buf[i] = 0
			}
		}
		z.WriteBlock(blk, &buf)
	}
	return nil
}

// Rows returns the operator dimension.
func (p *sgsPre) Rows() int { return p.rows }

// Kind names the algorithm.
func (p *sgsPre) Kind() Kind { return SGS }

// Scrub patrols both protected structures: the matrix copy and the
// inverse diagonal. It continues past a faulty structure so the full
// damage is counted, matching the ProtectedMatrix contract; the owner
// serializes it against Apply, exactly as for a protected matrix.
func (p *sgsPre) Scrub() (corrected int, err error) {
	n, err := p.m.CheckAll()
	corrected += n
	n2, err2 := p.inv.CheckAll()
	corrected += n2
	if err == nil {
		err = err2
	}
	return corrected, err
}

// Stats reports apply counts and integrity statistics.
func (p *sgsPre) Stats() Stats {
	return Stats{Applies: p.n.Load(), Counters: p.counters.Snapshot()}
}

// SetCounters attaches a statistics accumulator to every protected
// structure.
func (p *sgsPre) SetCounters(c *core.Counters) {
	p.counters = c
	p.m.SetCounters(c)
	p.inv.SetCounters(c)
}

// SetReadMode selects the read discipline for the sweeps, propagating
// it to the protected triangular-sweep matrix. Must be set before the
// preconditioner is shared.
func (p *sgsPre) SetReadMode(mode core.ReadMode) {
	p.mode = mode
	p.m.SetReadMode(mode)
}

// SetShared is the deprecated boolean precursor of SetReadMode.
//
// Deprecated: use SetReadMode.
func (p *sgsPre) SetShared(shared bool) { p.SetReadMode(sharedMode(shared)) }

// Matrix exposes the protected triangular-sweep matrix (fault
// injection and inspection).
func (p *sgsPre) Matrix() *core.Matrix { return p.m }

// RawState exposes the protected inverse diagonal for fault injection;
// the matrix copy is reachable through Matrix.
func (p *sgsPre) RawState() []*core.Vector { return []*core.Vector{p.inv} }
