package precond

import (
	"fmt"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/par"
)

// jacobiPre is the Jacobi (inverse-diagonal) preconditioner: its setup
// product 1/diag(A) lives in a codeword-protected vector, so every
// Apply verifies the diagonal it scales by and a bit flip in resident
// preconditioner memory is corrected or detected, never silently
// folded into the Krylov basis.
type jacobiPre struct {
	rows    int
	inv     *core.Vector
	workers int
	mode    core.ReadMode
	applies
	counters *core.Counters
}

func newJacobi(src *csr.Matrix, opt Options) (*jacobiPre, error) {
	d, err := invertDiagonal(src)
	if err != nil {
		return nil, err
	}
	inv := core.VectorFromSlice(d, opt.Scheme)
	inv.SetCRCBackend(opt.Backend)
	return &jacobiPre{rows: src.Rows(), inv: inv, workers: opt.Workers}, nil
}

// Apply computes z = D^-1 r through the protected inverse diagonal.
func (p *jacobiPre) Apply(z, r *core.Vector) error {
	if z.Len() != p.rows || r.Len() != p.rows {
		return fmt.Errorf("precond: jacobi Apply length mismatch: z %d, r %d, rows %d",
			z.Len(), r.Len(), p.rows)
	}
	p.bump()
	return par.ForEach(p.inv.Blocks(), p.workers, 1, func(lo, hi int) error {
		var dv, rv, out [blockLen]float64
		if p.mode.Verifies() {
			vecChecks(p.inv, hi-lo)
		}
		vecChecks(r, hi-lo)
		for blk := lo; blk < hi; blk++ {
			if err := readBlk(p.inv, blk, &dv, p.mode); err != nil {
				return err
			}
			if err := r.ReadBlock(blk, &rv); err != nil {
				return err
			}
			for i := range out {
				out[i] = dv[i] * rv[i]
			}
			z.WriteBlock(blk, &out)
		}
		return nil
	})
}

// Rows returns the operator dimension.
func (p *jacobiPre) Rows() int { return p.rows }

// Kind names the algorithm.
func (p *jacobiPre) Kind() Kind { return Jacobi }

// Scrub patrols the protected inverse diagonal.
func (p *jacobiPre) Scrub() (int, error) { return p.inv.CheckAll() }

// Stats reports apply counts and integrity statistics.
func (p *jacobiPre) Stats() Stats {
	return Stats{Applies: p.n.Load(), Counters: p.counters.Snapshot()}
}

// SetCounters attaches a statistics accumulator to the state vector.
func (p *jacobiPre) SetCounters(c *core.Counters) {
	p.counters = c
	p.inv.SetCounters(c)
}

// SetReadMode selects the read discipline for the protected state.
func (p *jacobiPre) SetReadMode(mode core.ReadMode) { p.mode = mode }

// SetShared is the deprecated boolean precursor of SetReadMode.
//
// Deprecated: use SetReadMode.
func (p *jacobiPre) SetShared(shared bool) { p.SetReadMode(sharedMode(shared)) }

// RawState exposes the protected inverse diagonal for fault injection.
func (p *jacobiPre) RawState() []*core.Vector { return []*core.Vector{p.inv} }
