package precond

import (
	"testing"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/op"
	"abft/internal/solvers"
)

// benchmarkPCG times a full preconditioned CG solve of a protected
// Poisson operator; the CI benchmark smoke step runs one iteration of
// each to catch bit-rot in the preconditioner paths.
func benchmarkPCG(b *testing.B, kind Kind) {
	src := csr.Laplacian2D(32, 32)
	pm, err := op.New(op.CSR, src, op.Config{Scheme: core.SECDED64, RowPtrScheme: core.SECDED64})
	if err != nil {
		b.Fatal(err)
	}
	a := solvers.MatrixOperator{M: pm, Workers: 1}
	opt := solvers.Options{Tol: 1e-8, MaxIter: 10000}
	if kind != None {
		pre, err := New(kind, src, Options{Scheme: core.SECDED64})
		if err != nil {
			b.Fatal(err)
		}
		opt.Preconditioner = pre
	}
	rhs := refVector(src.Rows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := core.NewVector(src.Rows(), core.SECDED64)
		rv := core.VectorFromSlice(rhs, core.SECDED64)
		res, err := solvers.CG(a, x, rv, opt)
		if err != nil || !res.Converged {
			b.Fatalf("solve: %v converged=%v", err, res.Converged)
		}
	}
}

func BenchmarkPCGBaselineCG(b *testing.B) { benchmarkPCG(b, None) }
func BenchmarkPCGJacobi(b *testing.B)     { benchmarkPCG(b, Jacobi) }
func BenchmarkPCGBlockJacobi(b *testing.B) {
	benchmarkPCG(b, BlockJacobi)
}
func BenchmarkPCGSGS(b *testing.B) { benchmarkPCG(b, SGS) }
