module abft

go 1.24
