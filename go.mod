module abft

// 1.23 is the floor of the CI Go version matrix; nothing here needs a
// newer toolchain.
go 1.23
