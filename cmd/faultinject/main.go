// Command faultinject runs fault-injection campaigns against the ABFT
// schemes and prints the outcome distribution per storage format, scheme,
// structure and flip count — the experimental verification of the paper's
// section IV capability claims (SECDED corrects 1 and detects 2 flips per
// codeword; CRC32C detects up to 5 at Hamming distance 6 and corrects
// 1-2), extended across the protected-operator layer's formats.
//
// Usage:
//
//	faultinject                             # the full capability matrix (CSR)
//	faultinject -format coo                 # inject into COO storage
//	faultinject -format all                 # sweep csr, coo and sellcs
//	faultinject -scheme crc32c -bits 5 -trials 1000
//	faultinject -structure vector -scatter
//	faultinject -shards 4                   # strike one shard of a sharded operator
//	faultinject -shards 4 -structure halo   # corrupt resident halo buffers mid-product
//	faultinject -structure precond -precond sgs  # corrupt resident preconditioner state
//	faultinject -recovery rollback          # corrupt live solver vectors mid-solve
//	faultinject -structure solverstate -recovery restart -shards 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/faults"
	"abft/internal/mm"
	"abft/internal/op"
	"abft/internal/precond"
	"abft/internal/solvers"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject:", err)
		os.Exit(1)
	}
}

func parseFormats(s string) ([]op.Format, error) {
	if s == "all" {
		return op.Formats, nil
	}
	var out []op.Format
	for _, name := range strings.Split(s, ",") {
		f, err := op.ParseFormat(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// tally accumulates per-format outcome totals for the summary.
type tally struct {
	benign, corrected, detected, sdc int
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faultinject", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		format    = fs.String("format", "csr", "matrix storage formats: csr, coo, sellcs, all, or a comma list")
		scheme    = fs.String("scheme", "", "restrict to one scheme (sed, secded64, secded128, crc32c)")
		structure = fs.String("structure", "", "restrict to one structure (vector, elements, rowptr)")
		bits      = fs.Int("bits", 0, "restrict to one flip count (default sweep 1..5)")
		trials    = fs.Int("trials", 400, "trials per configuration")
		seed      = fs.Int64("seed", 1, "campaign seed")
		scatter   = fs.Bool("scatter", false, "scatter flips across the structure instead of one codeword")
		size      = fs.Int("size", 64, "structure size (vector length or grid side)")
		matrix    = fs.String("matrix", "", "MatrixMarket file to inject into (matrix structures; default: generated stencil)")
		shards    = fs.Int("shards", 0, "row-partition matrix campaigns across this many shards (>= 2 also enables the halo structure)")
		pre       = fs.String("precond", "", "preconditioner whose protected state the precond structure corrupts: jacobi, bjacobi, sgs (setting it also enables the precond structure)")
		rec       = fs.String("recovery", "", "solver recovery policy solverstate campaigns run under: off, rollback, restart (setting it also enables the solverstate structure)")
		ckpt      = fs.Int("ckpt-interval", 0, "rollback checkpoint cadence for solverstate campaigns (0 adapts)")
		phase     = fs.String("phase", "", "strike a solve phase instead of a resident structure: inner (selective FGMRES's unverified inner solve)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("shards %d must be >= 0", *shards)
	}

	formats, err := parseFormats(*format)
	if err != nil {
		return err
	}
	var plain *csr.Matrix
	if *matrix != "" {
		plain, err = mm.ReadFile(*matrix)
		if err != nil {
			return err
		}
	}
	schemes := core.ProtectingSchemes
	if *scheme != "" {
		s, err := core.ParseScheme(*scheme)
		if err != nil {
			return err
		}
		schemes = []core.Scheme{s}
	}
	preKind := precond.None
	if *pre != "" {
		var err error
		if preKind, err = precond.ParseKind(*pre); err != nil {
			return err
		}
	}
	recovery := solvers.RecoveryOff
	solverState := *rec != ""
	if solverState {
		var err error
		if recovery, err = solvers.ParseRecovery(*rec); err != nil {
			return err
		}
	}
	structures := []core.Structure{core.StructVector, core.StructElements, core.StructRowPtr}
	if *shards > 1 {
		structures = append(structures, core.StructHalo)
	}
	if preKind != precond.None {
		structures = append(structures, core.StructPrecond)
	}
	if solverState {
		structures = append(structures, core.StructSolverState)
	}
	if *structure != "" {
		switch *structure {
		case "vector":
			structures = []core.Structure{core.StructVector}
		case "elements":
			structures = []core.Structure{core.StructElements}
		case "rowptr":
			structures = []core.Structure{core.StructRowPtr}
		case "halo":
			if *shards < 2 {
				return fmt.Errorf("the halo structure needs -shards >= 2 (got %d)", *shards)
			}
			structures = []core.Structure{core.StructHalo}
		case "precond":
			if preKind == precond.None {
				preKind = precond.Jacobi
			}
			structures = []core.Structure{core.StructPrecond}
		case "solverstate":
			structures = []core.Structure{core.StructSolverState}
		default:
			return fmt.Errorf("unknown structure %q", *structure)
		}
	}
	bitCounts := []int{1, 2, 3, 4, 5}
	if *bits > 0 {
		bitCounts = []int{*bits}
	}

	mode := "same-codeword"
	if *scatter {
		mode = "scattered"
	}
	if *shards > 1 {
		mode = fmt.Sprintf("%s, matrix campaigns over %d shards", mode, *shards)
	}
	if plain != nil {
		fmt.Fprintf(stdout, "fault injection: %d trials per configuration, %s flips, matrix %s (%dx%d, %d entries)\n\n",
			*trials, mode, *matrix, plain.Rows(), plain.Cols32(), plain.NNZ())
	} else {
		fmt.Fprintf(stdout, "fault injection: %d trials per configuration, %s flips, size %d\n\n",
			*trials, mode, *size)
	}
	header := fmt.Sprintf("%-7s %-11s %-11s %5s %9s %10s %10s %10s %8s %8s",
		"format", "scheme", "structure", "flips", "benign", "corrected", "detected", "recovered", "sdc", "sdc rate")
	fmt.Fprintln(stdout, header)
	fmt.Fprintln(stdout, strings.Repeat("-", len(header)))

	if *phase != "" {
		if *phase != faults.PhaseInner {
			return fmt.Errorf("unknown phase %q (choices: %s)", *phase, faults.PhaseInner)
		}
		// Phase campaigns strike a solve in flight, not a resident
		// structure: one row per format/scheme/flip-count.
		for _, f := range formats {
			for _, s := range schemes {
				for _, b := range bitCounts {
					res, err := faults.Run(faults.CampaignConfig{
						Scheme:             s,
						Phase:              faults.PhaseInner,
						Format:             f,
						Bits:               b,
						Trials:             *trials,
						Seed:               *seed,
						Size:               *size,
						Matrix:             plain,
						Shards:             *shards,
						Recovery:           recovery,
						CheckpointInterval: *ckpt,
					})
					if err != nil {
						return err
					}
					fmt.Fprintf(stdout, "%-7s %-11s %-11s %5d %9d %10d %10d %10d %8d %7.1f%%\n",
						f, s, *phase, b, res.Benign, res.Corrected, res.Detected, res.Recovered,
						res.SDC, 100*res.Rate(faults.SDC))
				}
			}
		}
		return nil
	}

	tallies := map[op.Format]*tally{}
	for _, st := range structures {
		for _, f := range formats {
			if (st == core.StructVector || st == core.StructPrecond) && f != formats[0] {
				continue // vectors and preconditioner state have no storage format; run once
			}
			if st == core.StructRowPtr && f == op.SELLCS {
				fmt.Fprintf(stdout, "%-7s %-11s %-11s        (skipped: sell-c-sigma has no protected auxiliary structure)\n",
					f, "-", st)
				continue
			}
			fname := f.String()
			if st == core.StructVector {
				fname = "-"
			}
			if st == core.StructPrecond {
				fname = preKind.String()
			}
			for _, s := range schemes {
				for _, b := range bitCounts {
					res, err := faults.Run(faults.CampaignConfig{
						Scheme:             s,
						Structure:          st,
						Format:             f,
						Bits:               b,
						Trials:             *trials,
						Seed:               *seed,
						SameCodeword:       !*scatter,
						Size:               *size,
						Matrix:             plain,
						Shards:             *shards,
						Precond:            preKind,
						Recovery:           recovery,
						CheckpointInterval: *ckpt,
					})
					if err != nil {
						return err
					}
					if st != core.StructVector && st != core.StructPrecond && st != core.StructSolverState {
						tl := tallies[f]
						if tl == nil {
							tl = &tally{}
							tallies[f] = tl
						}
						tl.benign += res.Benign
						tl.corrected += res.Corrected
						tl.detected += res.Detected
						tl.sdc += res.SDC
					}
					fmt.Fprintf(stdout, "%-7s %-11s %-11s %5d %9d %10d %10d %10d %8d %7.1f%%\n",
						fname, s, st, b, res.Benign, res.Corrected, res.Detected, res.Recovered,
						res.SDC, 100*res.Rate(faults.SDC))
				}
			}
		}
	}

	if len(tallies) > 0 {
		fmt.Fprintln(stdout, "\nper-format matrix campaign totals:")
		fmt.Fprintf(stdout, "%-7s %9s %10s %10s %8s %16s\n",
			"format", "benign", "corrected", "detected", "sdc", "handled rate")
		for _, f := range formats {
			tl := tallies[f]
			if tl == nil {
				continue
			}
			total := tl.benign + tl.corrected + tl.detected + tl.sdc
			handled := 0.0
			if total > 0 {
				handled = 100 * float64(tl.corrected+tl.detected) / float64(total)
			}
			fmt.Fprintf(stdout, "%-7s %9d %10d %10d %8d %15.1f%%\n",
				f, tl.benign, tl.corrected, tl.detected, tl.sdc, handled)
		}
	}

	if solverState {
		fmt.Fprintf(stdout, "\nsolverstate campaigns solved under recovery=%v (recovered = DUE rolled back to the correct answer)\n", recovery)
	}
	fmt.Fprintln(stdout, "\npaper section IV expectations (flips within one codeword):")
	fmt.Fprintln(stdout, "  sed:       detects odd flip counts, corrects none, misses even counts")
	fmt.Fprintln(stdout, "  secded:    corrects 1, detects 2; 3+ may mis-correct")
	fmt.Fprintln(stdout, "  crc32c:    corrects 1-2, detects up to 5 (HD=6); no SDC below 6 flips")
	return nil
}
