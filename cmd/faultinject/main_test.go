package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"abft/internal/csr"
	"abft/internal/mm"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "secded64", "-structure", "elements",
		"-bits", "1", "-trials", "20", "-size", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"fault injection: 20 trials", "secded64", "per-format matrix campaign totals"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunMatrixMarketIngestion injects into an operator loaded from a
// MatrixMarket file instead of the generated stencil.
func TestRunMatrixMarketIngestion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "op.mtx")
	if err := mm.WriteFile(path, csr.Laplacian2D(8, 8)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-matrix", path,
		"-scheme", "secded64", "-structure", "elements",
		"-bits", "1", "-trials", "20",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "matrix "+path) {
		t.Errorf("output does not name the ingested matrix:\n%s", out.String())
	}

	var errOut bytes.Buffer
	if err := run([]string{"-matrix", filepath.Join(t.TempDir(), "missing.mtx")}, &errOut); err == nil {
		t.Fatal("missing matrix file accepted")
	}
}

// TestRunPrecondCampaign runs the preconditioner-state structure: the
// protected setup product must correct the single flips and detect the
// doubles (SECDED64), with no SDC.
func TestRunPrecondCampaign(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-structure", "precond", "-precond", "sgs",
		"-scheme", "secded64", "-trials", "20", "-size", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"sgs", "precond", "secded64"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-scheme", "tmr"}, "choices: none, sed, secded64, secded128, crc32c"},
		{[]string{"-format", "ellpack"}, "choices: csr, coo, sellcs"},
		{[]string{"-structure", "diagonal"}, "unknown structure"},
		{[]string{"-precond", "ilu"}, "choices: none, jacobi, bjacobi, sgs"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not contain %q", c.args, err, c.want)
		}
	}
}

// TestRunSolverStateCampaign smokes the -recovery path: live solver
// vectors are corrupted mid-solve and the rollback policy recovers.
func TestRunSolverStateCampaign(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-structure", "solverstate", "-recovery", "rollback",
		"-scheme", "secded64", "-bits", "2", "-trials", "8", "-size", "6"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "solverstate") || !strings.Contains(s, "recovery=rollback") {
		t.Errorf("output missing solverstate reporting:\n%s", s)
	}
	if err := run([]string{"-recovery", "bogus"}, &out); err == nil {
		t.Fatal("unknown recovery policy accepted")
	}
}
