// Command abftd runs the resident fault-tolerant solve service: an
// HTTP/JSON API over the protected-operator layer with a bounded worker
// pool, a content-addressed cache of protected operators shared across
// requests, and a background scrub daemon patrolling the cached
// operators.
//
// Usage:
//
//	abftd -addr :8080 -workers 8 -cache 32 -scrub 5s
//	abftd -log-level debug -debug-addr 127.0.0.1:6060
//
// Endpoints:
//
//	POST /v1/solve             submit a solve (append ?wait=1 to block)
//	GET  /v1/jobs/{id}         poll a job
//	GET  /v1/jobs/{id}/trace   per-stage solve trace with residual history
//	GET  /v1/events            recent fault events (scrubs, rollbacks, retries)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text metrics
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof/ and expvar under /debug/vars — kept off the service
// address so profiling endpoints are never exposed where solves are.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abft/internal/obs"
	"abft/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "abftd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and serves until ctx is cancelled. When ready
// is non-nil it receives the bound listen address once the socket is
// open (the hook the smoke tests use to find an ephemeral port).
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("abftd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 4, "solve worker pool size")
		queue   = fs.Int("queue", 64, "job queue depth")
		cache   = fs.Int("cache", 16, "max resident protected operators")
		scrub   = fs.Duration("scrub", 5*time.Second, "scrub daemon interval (0 disables)")
		maxw    = fs.Int("maxworkers", 8, "per-job kernel goroutine cap")
		history = fs.Int("history", 1024, "finished jobs kept queryable")
		drain   = fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for draining queued and running jobs")
		debug   = fs.String("debug-addr", "", "serve pprof and expvar debug endpoints on this address (empty disables)")
		logLvl  = fs.String("log-level", "info", "minimum structured-log level: debug, info, warn or error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLvl)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheOperators:  *cache,
		ScrubInterval:   *scrub,
		MaxSolveWorkers: *maxw,
		JobHistory:      *history,
		Logger:          obs.NewLogger(stdout, level),
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	fmt.Fprintf(stdout, "abftd listening on %s (workers=%d queue=%d cache=%d scrub=%v)\n",
		ln.Addr(), *workers, *queue, *cache, *scrub)

	if *debug != "" {
		// The debug listener is separate from the service socket on
		// purpose: pprof and expvar stay bindable to loopback while the
		// API faces the network. Only the default expvar vars (memstats,
		// cmdline) are published — no expvar.Publish, which would panic
		// on re-registration when run is invoked twice in one process.
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		ds := &http.Server{Handler: dmux}
		go ds.Serve(dln)
		defer ds.Close()
		if ready != nil {
			ready <- dln.Addr().String()
		}
		fmt.Fprintf(stdout, "abftd debug endpoints on %s\n", dln.Addr())
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful shutdown: close the listener and finish in-flight
		// HTTP exchanges, then stop admission and drain the worker
		// pool — queued jobs run to completion unless the deadline
		// expires — and finally flush the scrub daemon.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			srv.Shutdown(shutdownCtx)
			return err
		}
		<-errc
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(stdout, "abftd: drain deadline expired with jobs still running")
			return err
		}
		fmt.Fprintln(stdout, "abftd: drained and shut down")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
