package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonSmoke boots the daemon on an ephemeral port, round-trips a
// solve and shuts it down cleanly.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-scrub", "10ms"}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"matrix": {"grid": {"nx": 8, "ny": 8}}, "scheme": "secded64", "tol": 1e-8}`
	resp, err = http.Post(base+"/v1/solve?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		State  string `json:"state"`
		Result *struct {
			Converged bool `json:"converged"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != "done" || st.Result == nil || !st.Result.Converged {
		t.Fatalf("solve round-trip failed: status %d, body %+v", resp.StatusCode, st)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "abftd listening on") {
		t.Fatalf("missing startup line in output:\n%s", out.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-nope"}, &out, nil)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestDaemonGracefulShutdown enqueues asynchronous work and then
// signals shutdown: the daemon must drain the queued jobs within the
// deadline and report a clean exit.
func TestDaemonGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "30s"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Queue async jobs (no wait) so the drain has work to finish.
	for i := 0; i < 3; i++ {
		resp, err := http.Post("http://"+addr+"/v1/solve", "application/json",
			strings.NewReader(`{"matrix": {"grid": {"nx": 10, "ny": 10}}, "scheme": "secded64", "recovery": "rollback", "tol": 1e-8}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("solve status %d", resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "drained and shut down") {
		t.Fatalf("missing drain confirmation in output:\n%s", out.String())
	}
}
