package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the daemon's structured
// logger writes to stdout from worker goroutines, so the capture buffer
// must tolerate concurrent writers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonSmoke boots the daemon on an ephemeral port, round-trips a
// solve and shuts it down cleanly.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-scrub", "10ms"}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"matrix": {"grid": {"nx": 8, "ny": 8}}, "scheme": "secded64", "tol": 1e-8}`
	resp, err = http.Post(base+"/v1/solve?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		State  string `json:"state"`
		Result *struct {
			Converged bool `json:"converged"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != "done" || st.Result == nil || !st.Result.Converged {
		t.Fatalf("solve round-trip failed: status %d, body %+v", resp.StatusCode, st)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "abftd listening on") {
		t.Fatalf("missing startup line in output:\n%s", out.String())
	}
}

// TestDaemonDebugEndpoints boots the daemon with the debug listener and
// verbose structured logging, round-trips a solve, and checks every
// observability surface: /metrics, /v1/events, the job trace, the pprof
// index, expvar, and the JSON log stream.
func TestDaemonDebugEndpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	ready := make(chan string, 2)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
			"-log-level", "debug", "-workers", "2", "-scrub", "10ms",
		}, &out, ready)
	}()
	var addr, debugAddr string
	for _, dst := range []*string{&addr, &debugAddr} {
		select {
		case *dst = <-ready:
		case err := <-errc:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never became ready")
		}
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/solve?wait=1", "application/json",
		strings.NewReader(`{"matrix": {"grid": {"nx": 8, "ny": 8}}, "scheme": "secded64", "tol": 1e-8}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != "done" {
		t.Fatalf("solve round-trip failed: status %d, %+v", resp.StatusCode, st)
	}

	nonEmpty := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("GET %s: status %d, %d bytes", url, resp.StatusCode, len(body))
		}
		return string(body)
	}
	if body := nonEmpty(base + "/metrics"); !strings.Contains(body, "abftd_stage_duration_seconds_bucket") {
		t.Fatal("stage histograms missing from /metrics")
	}
	if body := nonEmpty(base + "/v1/jobs/" + st.ID + "/trace"); !strings.Contains(body, `"stage": "solve"`) {
		t.Fatalf("trace missing solve span: %s", body)
	}
	nonEmpty(base + "/v1/events")
	nonEmpty("http://" + debugAddr + "/debug/pprof/")
	if body := nonEmpty("http://" + debugAddr + "/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatal("expvar missing memstats")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	logs := out.String()
	for _, want := range []string{
		"abftd debug endpoints on",
		`"msg":"service started"`,
		`"msg":"job finished"`,
		`"level":"DEBUG"`,
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("daemon output missing %q:\n%s", want, logs)
		}
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out syncBuffer
	err := run(context.Background(), []string{"-nope"}, &out, nil)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestDaemonGracefulShutdown enqueues asynchronous work and then
// signals shutdown: the daemon must drain the queued jobs within the
// deadline and report a clean exit.
func TestDaemonGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "30s"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Queue async jobs (no wait) so the drain has work to finish.
	for i := 0; i < 3; i++ {
		resp, err := http.Post("http://"+addr+"/v1/solve", "application/json",
			strings.NewReader(`{"matrix": {"grid": {"nx": 10, "ny": 10}}, "scheme": "secded64", "recovery": "rollback", "tol": 1e-8}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("solve status %d", resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "drained and shut down") {
		t.Fatalf("missing drain confirmation in output:\n%s", out.String())
	}
}
