package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{"-fig", "crc", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"abftbench:", "CRC32C backends", "hardware"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunPCGExperiment runs the PCG-vs-CG experiment restricted to one
// preconditioner at a tiny size.
func TestRunPCGExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{"-fig", "pcg", "-precond", "sgs", "-nx", "16", "-steps", "1", "-runs", "1", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"Preconditioned CG", "sgs", "iter saving"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsUnknownPrecond: the -precond error must list the
// registered choices, matching the ParseFormat convention.
func TestRunRejectsUnknownPrecond(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "pcg", "-precond", "ilu"}, &out)
	if err == nil {
		t.Fatal("unknown preconditioner accepted")
	}
	if want := "choices: none, jacobi, bjacobi, sgs"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not list %q", err, want)
	}
}
