package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{"-fig", "crc", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"abftbench:", "CRC32C backends", "hardware"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunPCGExperiment runs the PCG-vs-CG experiment restricted to one
// preconditioner at a tiny size.
func TestRunPCGExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{"-fig", "pcg", "-precond", "sgs", "-nx", "16", "-steps", "1", "-runs", "1", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"Preconditioned CG", "sgs", "iter saving"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsUnknownPrecond: the -precond error must list the
// registered choices, matching the ParseFormat convention.
func TestRunRejectsUnknownPrecond(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "pcg", "-precond", "ilu"}, &out)
	if err == nil {
		t.Fatal("unknown preconditioner accepted")
	}
	if want := "choices: none, jacobi, bjacobi, sgs"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not list %q", err, want)
	}
}

// TestRunRecoveryExperiment runs the checkpoint-overhead experiment at
// a tiny size and checks the -json trajectory output round-trips.
func TestRunRecoveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	path := t.TempDir() + "/bench.json"
	var out bytes.Buffer
	err := run([]string{"-fig", "recovery", "-ckpt-intervals", "16", "-nx", "16",
		"-steps", "1", "-runs", "1", "-quiet", "-json", path}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rollback/interval-16") {
		t.Fatalf("missing recovery row:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Meta struct {
			GoVersion  string `json:"go_version"`
			GOMAXPROCS int    `json:"gomaxprocs"`
		} `json:"meta"`
		Results []struct {
			Name        string  `json:"name"`
			NsPerOp     int64   `json:"ns_per_op"`
			Iterations  int     `json:"iterations"`
			OverheadPct float64 `json:"overhead_pct"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bad json: %v\n%s", err, data)
	}
	if report.Meta.GoVersion == "" || report.Meta.GOMAXPROCS < 1 {
		t.Fatalf("run metadata incomplete: %+v\n%s", report.Meta, data)
	}
	results := report.Results
	if len(results) != 1 || results[0].Name != "recovery/rollback/interval-16" ||
		results[0].NsPerOp <= 0 || results[0].Iterations != 1 {
		t.Fatalf("unexpected samples: %+v", results)
	}
}

// TestRunRejectsRecoveryOff pins the usage error for -fig recovery
// without a policy.
func TestRunRejectsRecoveryOff(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "recovery", "-recovery", "off"}, &out); err == nil {
		t.Fatal("recovery experiment without a policy accepted")
	}
	if err := run([]string{"-fig", "recovery", "-ckpt-intervals", "0"}, &out); err == nil {
		t.Fatal("zero checkpoint interval accepted")
	}
}
