package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{"-fig", "crc", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"abftbench:", "CRC32C backends", "hardware"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
