// Command abftbench regenerates the paper's evaluation figures on the
// host platform: per-scheme runtime overheads for CSR element, row-pointer
// and dense vector protection (Figures 4, 5, 9), check-interval sweeps
// (Figures 6-8), the combined full-protection overhead compared with the
// paper's 8.1 percent hardware-ECC reference, the convergence perturbation
// study, the hardware-vs-software CRC32C comparison, and the PCG-vs-CG
// experiment over the protected preconditioners.
//
// Usage:
//
//	abftbench -fig all
//	abftbench -fig 4 -nx 512 -steps 5 -runs 5
//	abftbench -fig 8 -maxexp 7
//	abftbench -fig pcg -precond jacobi,sgs
//	abftbench -fig recovery -ckpt-intervals 8,32,128
//	abftbench -fig all -json BENCH_$(date +%Y%m%d).json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"abft/internal/bench"
	"abft/internal/precond"
	"abft/internal/solvers"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abftbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("abftbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		fig     = fs.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,full,conv,crc,formats,shards,spmv,spmm,pcg,recovery,selective,vecops,all")
		nx      = fs.Int("nx", 128, "grid cells per side (paper: 2048)")
		steps   = fs.Int("steps", 2, "timesteps per run (paper: 5)")
		runs    = fs.Int("runs", 3, "repetitions averaged (paper: 5)")
		eps     = fs.Float64("eps", 1e-8, "solver tolerance (relative)")
		workers = fs.Int("workers", 1, "kernel goroutines")
		maxExp  = fs.Int("maxexp", 7, "largest interval exponent for figures 6-8 (2^n)")
		shards  = fs.String("shards", "2,4,8", "shard counts for the shard-scaling experiment")
		pre     = fs.String("precond", "", "preconditioners for the pcg experiment (comma list of jacobi, bjacobi, sgs; default all)")
		rec     = fs.String("recovery", "rollback", "recovery policy for the checkpoint-overhead experiment (rollback, restart)")
		ckpts   = fs.String("ckpt-intervals", "8,32,128", "checkpoint intervals for the recovery experiment")
		jsonOut = fs.String("json", "", "also write machine-readable results (name, ns/op, iterations, overhead %) to this file; - writes to stdout")
		quiet   = fs.Bool("quiet", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := bench.Options{
		NX:             *nx,
		Steps:          *steps,
		Runs:           *runs,
		Eps:            *eps,
		Workers:        *workers,
		MaxIntervalExp: *maxExp,
		Verbose:        !*quiet,
		Log:            os.Stderr,
	}
	out := stdout

	fmt.Fprintf(out, "abftbench: grid %dx%d, %d steps, mean of %d runs, eps %g\n",
		*nx, *nx, *steps, *runs, *eps)
	fmt.Fprintf(out, "(the paper's testbed: 2048x2048, 5 steps, mean of 5 runs)\n\n")

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	// Machine-readable samples accumulated across every overhead
	// figure that ran, for the -json perf-trajectory record.
	var results []bench.JSONResult
	collect := func(figure string, rows []bench.Row) {
		results = append(results, bench.RowsJSON(figure, *runs, rows)...)
	}

	if all || want["4"] {
		rows, err := bench.Fig4(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Figure 4: CSR element protection overhead", rows)
		collect("fig4", rows)
	}
	if all || want["5"] {
		rows, err := bench.Fig5(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Figure 5: row-pointer protection overhead", rows)
		collect("fig5", rows)
	}
	if all || want["6"] {
		s, err := bench.Fig6(opt)
		if err != nil {
			return err
		}
		bench.PrintSeries(out, "Figure 6: full-CSR SED overhead vs check interval", s)
		results = append(results, bench.SeriesJSON("fig6", *runs, s)...)
	}
	if all || want["7"] {
		s, err := bench.Fig7(opt)
		if err != nil {
			return err
		}
		bench.PrintSeries(out, "Figure 7: full-CSR SECDED64 overhead vs check interval", s)
		results = append(results, bench.SeriesJSON("fig7", *runs, s)...)
	}
	if all || want["8"] {
		s, err := bench.Fig8(opt)
		if err != nil {
			return err
		}
		bench.PrintSeries(out, "Figure 8: full-CSR CRC32C (software) overhead vs check interval", s)
		results = append(results, bench.SeriesJSON("fig8", *runs, s)...)
	}
	if all || want["9"] {
		rows, err := bench.Fig9(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Figure 9: dense vector protection overhead", rows)
		collect("fig9", rows)
	}
	if all || want["full"] {
		row, err := bench.FullProtection(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Full protection (section VII-B)", []bench.Row{row})
		fmt.Fprintf(out, "paper reference: %.1f%% hardware-ECC overhead (NVIDIA K40), %.0f%% software target\n\n",
			bench.HardwareECCTargetPct, 11.0)
		collect("full", []bench.Row{row})
	}
	if all || want["formats"] {
		rows, err := bench.FormatComparison(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Storage formats: element protection overhead per format", rows)
		collect("formats", rows)
	}
	if all || want["spmv"] {
		counts, err := parseShardCounts(*shards)
		if err != nil {
			return err
		}
		spmvCounts := []int{0}
		for _, c := range counts {
			if c > 1 {
				spmvCounts = append(spmvCounts, c)
				break
			}
		}
		rows, err := bench.SpMVOverhead(opt, spmvCounts)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "SpMV: verified read-path overhead per format (no solver)", rows)
		collect("spmv", rows)
	}
	if all || want["spmm"] {
		rows, err := bench.SpMMAmortization(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "SpMM: verified per-RHS cost vs batch width (amortized read path)", rows)
		collect("spmm", rows)
	}
	if all || want["shards"] {
		counts, err := parseShardCounts(*shards)
		if err != nil {
			return err
		}
		rows, err := bench.ShardScaling(opt, counts)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Sharded solve: overhead vs the unsharded operator (negative = speedup)", rows)
		collect("shards", rows)
	}
	if all || want["recovery"] {
		policy, err := solvers.ParseRecovery(*rec)
		if err != nil {
			return err
		}
		if policy == solvers.RecoveryOff {
			return fmt.Errorf("the recovery experiment needs a policy (choices: rollback, restart)")
		}
		intervals, err := parseIntervals(*ckpts)
		if err != nil {
			return err
		}
		rows, err := bench.RecoveryOverhead(opt, policy, intervals)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Recovery: fault-free checkpoint overhead vs cadence (full SECDED64)", rows)
		collect("recovery", rows)
	}
	if all || want["selective"] {
		rows, err := bench.SelectiveReliability(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Selective reliability: FGMRES full vs unverified inner solve (per outer Arnoldi step; verified-reads rows count checks, not ns)", rows)
		collect("selective", rows)
	}
	if all || want["vecops"] {
		rows, err := bench.VectorOps(opt)
		if err != nil {
			return err
		}
		bench.PrintRows(out, "Vector ops: CG tail unfused vs fused, spawn vs pool dispatch (decode-checks rows count checks, not ns)", rows)
		collect("vecops", rows)
	}
	if all || want["pcg"] {
		kinds, err := parsePrecondKinds(*pre)
		if err != nil {
			return err
		}
		rows, err := bench.PCGComparison(opt, kinds)
		if err != nil {
			return err
		}
		bench.PrintPCG(out, rows)
	}
	if all || want["conv"] {
		rows, err := bench.Convergence(opt)
		if err != nil {
			return err
		}
		bench.PrintConvergence(out, rows)
	}
	if all || want["crc"] {
		bench.PrintCRC(out, bench.CRCThroughput())
	}
	if *jsonOut != "" {
		w := out
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := bench.WriteJSON(w, results); err != nil {
			return err
		}
		if *jsonOut != "-" {
			fmt.Fprintf(out, "wrote %d benchmark samples to %s\n", len(results), *jsonOut)
		}
	}
	return nil
}

// parseIntervals parses the -ckpt-intervals comma list.
func parseIntervals(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad checkpoint interval %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parsePrecondKinds parses the -precond comma list (empty sweeps all).
func parsePrecondKinds(s string) ([]precond.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var out []precond.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := precond.ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if k == precond.None {
			return nil, fmt.Errorf("the pcg experiment needs a preconditioner (choices: %s)", precond.KindNames())
		}
		out = append(out, k)
	}
	return out, nil
}

// parseShardCounts parses the -shards comma list.
func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
