package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abft/internal/bench"
)

func writeReport(t *testing.T, name string, results []bench.JSONResult) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bench.WriteJSON(f, results); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchguard(t *testing.T) {
	base := writeReport(t, "base.json", []bench.JSONResult{
		{Name: "spmv/csr/secded64", OverheadPct: 100},
		{Name: "full/full-secded64", OverheadPct: 40},
		{Name: "retired/sample", OverheadPct: 5},
	})

	// Within slack: a couple of points of drift on either side, one
	// sample bouncing 30% — noise on a single sample must not fail the
	// suite as long as the mean stays put.
	cand := writeReport(t, "ok.json", []bench.JSONResult{
		{Name: "spmv/csr/secded64", OverheadPct: 160},
		{Name: "full/full-secded64", OverheadPct: 5},
		{Name: "retired/sample", OverheadPct: 4},
		{Name: "new/sample", OverheadPct: 1},
	})
	if err := run([]string{"-baseline", base, "-candidate", cand, "-slack", "15"}); err != nil {
		t.Fatalf("within-slack comparison failed: %v", err)
	}

	// Every sample up ~30%: the geometric mean breaches the 15% slack.
	bad := writeReport(t, "bad.json", []bench.JSONResult{
		{Name: "spmv/csr/secded64", OverheadPct: 160},
		{Name: "full/full-secded64", OverheadPct: 82},
		{Name: "retired/sample", OverheadPct: 36},
	})
	err := run([]string{"-baseline", base, "-candidate", bad, "-slack", "15"})
	if err == nil || !strings.Contains(err.Error(), "suite overhead regressed") {
		t.Fatalf("suite regression not flagged: %v", err)
	}

	// One sample more than doubling trips the single-sample backstop
	// even though the mean survives.
	spike := writeReport(t, "spike.json", []bench.JSONResult{
		{Name: "spmv/csr/secded64", OverheadPct: 320},
		{Name: "full/full-secded64", OverheadPct: 40},
		{Name: "retired/sample", OverheadPct: 5},
	})
	err = run([]string{"-baseline", base, "-candidate", spike, "-slack", "200"})
	if err == nil || !strings.Contains(err.Error(), "spmv/csr/secded64") {
		t.Fatalf("single-sample spike not flagged: %v", err)
	}

	// Disjoint files are an error, not a silent pass.
	other := writeReport(t, "other.json", []bench.JSONResult{{Name: "elsewhere", OverheadPct: 1}})
	if err := run([]string{"-baseline", base, "-candidate", other}); err == nil {
		t.Fatal("disjoint sample sets compared successfully")
	}

	// Missing flags and missing files fail loudly.
	if err := run(nil); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-baseline", base, "-candidate", filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Fatal("missing candidate file accepted")
	}
}
