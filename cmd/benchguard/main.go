// Command benchguard compares a fresh benchmark report against a
// committed baseline and fails when the protected-over-baseline
// overhead regressed beyond the slack.
//
// It guards the overhead *ratio*, not wall time: CI machines vary
// wildly in absolute speed, but the protected/unprotected quotient of
// the same binary on the same host is stable. A sample with baseline
// overhead O_b and candidate overhead O_c carries the per-sample ratio
//
//	(100 + O_c) / (100 + O_b)
//
// The suite regresses when the geometric mean of the shared samples'
// ratios exceeds 1 + slack/100 — single samples jitter with host load,
// but a slowdown in a shared code path moves its whole family of
// samples and the mean with it. A lone sample may additionally not
// exceed 1 + sample-slack/100 (default 100%, i.e. doubling), the
// catastrophic-single-regression backstop sized well above wall-clock
// noise.
//
// Samples present in only one file are reported and skipped, so the
// guard keeps working while figures are added or retired.
//
// Usage:
//
//	benchguard -baseline BENCH_006.json -candidate BENCH_smoke.json -slack 15
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"abft/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		basePath    = fs.String("baseline", "", "committed baseline report (required)")
		candPath    = fs.String("candidate", "", "freshly produced report (required)")
		slack       = fs.Float64("slack", 15, "allowed suite-wide (geometric mean) overhead-ratio regression in percent")
		sampleSlack = fs.Float64("sample-slack", 100, "allowed single-sample overhead-ratio regression in percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *candPath == "" {
		return fmt.Errorf("both -baseline and -candidate are required")
	}
	base, err := readReport(*basePath)
	if err != nil {
		return err
	}
	cand, err := readReport(*candPath)
	if err != nil {
		return err
	}

	baseBy := indexByName(base.Results)
	candBy := indexByName(cand.Results)
	shared := intersect(baseBy, candBy)
	if len(shared) == 0 {
		return fmt.Errorf("no shared samples between %s and %s", *basePath, *candPath)
	}

	// The per-name table prints on every run, pass or fail, so CI logs
	// always show the overhead trajectory at a glance.
	sampleLimit := 1 + *sampleSlack/100
	var failures []string
	logRatioSum := 0.0
	fmt.Printf("%-44s %9s -> %9s  %9s -> %9s  %6s  %s\n",
		"sample", "base ovh", "cand ovh", "base ns", "cand ns", "ratio", "status")
	for _, name := range shared {
		b, c := baseBy[name], candBy[name]
		// Overheads below zero (a protected run beating its baseline by
		// noise) clamp to zero so the ratio stays meaningful.
		ratio := (100 + max(c.OverheadPct, 0)) / (100 + max(b.OverheadPct, 0))
		logRatioSum += math.Log(ratio)
		status := "ok"
		if ratio > sampleLimit {
			status = "REGRESSED"
			failures = append(failures, name)
		}
		fmt.Printf("%-44s %+8.1f%% -> %+8.1f%%  %9d -> %9d  %6.3f  %s\n",
			name, b.OverheadPct, c.OverheadPct, b.NsPerOp, c.NsPerOp, ratio, status)
	}
	for _, name := range only(baseBy, candBy) {
		fmt.Printf("%-44s only in baseline (skipped)\n", name)
	}
	for _, name := range only(candBy, baseBy) {
		fmt.Printf("%-44s only in candidate (skipped)\n", name)
	}

	geomean := math.Exp(logRatioSum / float64(len(shared)))
	fmt.Printf("suite geometric mean ratio %.3f over %d shared samples (limit %.3f)\n",
		geomean, len(shared), 1+*slack/100)
	if geomean > 1+*slack/100 {
		return fmt.Errorf("suite overhead regressed %.1f%% beyond the %.0f%% slack (geometric mean ratio %.3f)",
			(geomean-1)*100, *slack, geomean)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d samples regressed beyond the %.0f%% single-sample slack: %v",
			len(failures), len(shared), *sampleSlack, failures)
	}
	fmt.Printf("within %.0f%% suite slack and %.0f%% single-sample slack\n", *slack, *sampleSlack)
	return nil
}

func readReport(path string) (bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.Report{}, err
	}
	defer f.Close()
	rep, err := bench.ReadReport(f)
	if err != nil {
		return bench.Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func indexByName(rs []bench.JSONResult) map[string]bench.JSONResult {
	m := make(map[string]bench.JSONResult, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}

func intersect(a, b map[string]bench.JSONResult) []string {
	var names []string
	for n := range a {
		if _, ok := b[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func only(a, b map[string]bench.JSONResult) []string {
	var names []string
	for n := range a {
		if _, ok := b[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
