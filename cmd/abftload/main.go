// Command abftload drives a running abftd with synthetic solve traffic
// and reports client-side latency and throughput: p50/p99 wall time per
// request and solves per second. Scenarios shape the mix:
//
//	single    distinct single-RHS jobs across two operators
//	batch     rhs_batch requests of width 2-8
//	coalesce  identical batch-eligible singles, bait for the
//	          service's admission-time coalescer
//	selective nonsymmetric convection-diffusion systems solved by
//	          FGMRES under selective reliability (unverified inner
//	          solve)
//	mixed     60% single, 20% batch, 20% coalesce
//
// After the drive it scrapes /metrics and echoes the coalescing
// counters, so a load run doubles as an end-to-end check that batching
// actually engaged.
//
// Usage:
//
//	abftload -addr http://127.0.0.1:8080 -n 200 -c 8 -scenario mixed
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abftload:", err)
		os.Exit(1)
	}
}

// request is one pre-built solve payload; building the whole schedule
// up front keeps the timed section free of JSON encoding and RNG work.
type request struct {
	scenario string
	body     []byte
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("abftload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "abftd base URL")
		n        = fs.Int("n", 100, "total requests")
		c        = fs.Int("c", 8, "concurrent clients")
		scenario = fs.String("scenario", "mixed", "traffic shape: single, batch, coalesce, selective, mixed")
		nx       = fs.Int("nx", 20, "grid cells per side of the largest operator")
		seed     = fs.Int64("seed", 1, "scenario RNG seed (schedules are deterministic per seed)")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *c < 1 {
		return fmt.Errorf("-n and -c must be at least 1")
	}
	reqs, err := buildSchedule(*scenario, *n, *nx, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	// Default transports keep two idle connections per host; with more
	// clients than that, every further request pays a fresh dial, which
	// staggers arrivals enough to distort latency and queue pressure.
	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *c},
	}
	url := strings.TrimRight(*addr, "/") + "/v1/solve?wait=1"
	durations := make([]time.Duration, len(reqs))
	errs := make([]error, len(reqs))
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				errs[i] = post(client, url, reqs[i].body)
				durations[i] = time.Since(t0)
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	failures := 0
	for i, e := range errs {
		if e != nil {
			failures++
			if failures <= 5 {
				fmt.Fprintf(stdout, "request %d (%s): %v\n", i, reqs[i].scenario, e)
			}
		}
	}
	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	fmt.Fprintf(stdout, "abftload: %d requests (%s), concurrency %d, %d failed\n",
		len(reqs), *scenario, *c, failures)
	fmt.Fprintf(stdout, "elapsed %v, %.1f solves/sec\n",
		elapsed.Round(time.Millisecond), float64(len(reqs))/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency p50 %v  p99 %v  max %v\n",
		quantile(durations, 0.50), quantile(durations, 0.99), durations[len(durations)-1])

	if coal, width, err := scrapeCoalescing(client, *addr); err != nil {
		fmt.Fprintf(stdout, "metrics scrape failed: %v\n", err)
	} else {
		fmt.Fprintf(stdout, "server coalesced %s jobs over %s executed solves\n", coal, width)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d requests failed", failures, len(reqs))
	}
	return nil
}

// buildSchedule materialises the request mix for a scenario.
func buildSchedule(scenario string, n, nx int, rng *rand.Rand) ([]request, error) {
	small := nx * 3 / 4
	if small < 4 {
		small = 4
	}
	rhs := func(rows, salt int) []float64 {
		b := make([]float64, rows)
		for i := range b {
			b[i] = float64((i*13+salt*7)%29) - 14
		}
		return b
	}
	single := func(i int) map[string]any {
		grids := [2]int{nx, small}
		schemes := [2]string{"secded64", "crc32c"}
		g := grids[i%2]
		return map[string]any{
			"matrix": map[string]any{"grid": map[string]int{"nx": g, "ny": g}},
			"scheme": schemes[(i/2)%2],
			"solver": "cg",
			"b":      rhs(g*g, i),
			"tol":    1e-8,
		}
	}
	batch := func(i int) map[string]any {
		k := 2 + rng.Intn(7)
		cols := make([][]float64, k)
		for j := range cols {
			cols[j] = rhs(small*small, i+j)
		}
		return map[string]any{
			"matrix":    map[string]any{"grid": map[string]int{"nx": small, "ny": small}},
			"scheme":    "secded64",
			"solver":    "cg",
			"rhs_batch": cols,
			"tol":       1e-8,
		}
	}
	// Identical payloads on one operator: queued duplicates are exactly
	// what the admission-time coalescer merges.
	// Identical options on the largest operator at a tight tolerance:
	// the solves are slow enough that a queued leader is still waiting
	// when its burst-mates arrive.
	coalesce := func(int) map[string]any {
		return map[string]any{
			"matrix":        map[string]any{"grid": map[string]int{"nx": nx, "ny": nx}},
			"scheme":        "secded64",
			"vector_scheme": "secded64",
			"solver":        "cg",
			"b":             rhs(nx*nx, 3),
			"tol":           1e-10,
		}
	}
	// A nonsymmetric upwind convection-diffusion operator shipped as raw
	// triplets, solved by FGMRES with the unverified inner solve: the
	// selective-reliability traffic shape. Row-wise diagonally dominant,
	// so the inner Richardson sweeps contract.
	selective := func(i int) map[string]any {
		const px, py = 1.5, 0.5
		rows := small * small
		var entries []map[string]any
		at := func(r, c int, v float64) {
			entries = append(entries, map[string]any{"row": r, "col": c, "val": v})
		}
		for j := 0; j < small; j++ {
			for k := 0; k < small; k++ {
				r := j*small + k
				diag := 4 + px + py
				if j > 0 {
					at(r, r-small, -(1 + py))
				} else {
					diag -= 1 + py
				}
				if k > 0 {
					at(r, r-1, -(1 + px))
				} else {
					diag -= 1 + px
				}
				at(r, r, diag+2)
				if k < small-1 {
					at(r, r+1, -1)
				}
				if j < small-1 {
					at(r, r+small, -1)
				}
			}
		}
		return map[string]any{
			"matrix":      map[string]any{"rows": rows, "cols": rows, "entries": entries},
			"scheme":      "secded64",
			"solver":      "fgmres",
			"reliability": "selective",
			"b":           rhs(rows, i),
			"tol":         1e-8,
		}
	}
	reqs := make([]request, 0, n)
	add := func(name string, payload map[string]any) error {
		body, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		reqs = append(reqs, request{scenario: name, body: body})
		return nil
	}
	for i := 0; len(reqs) < n; i++ {
		kind := scenario
		if scenario == "mixed" {
			switch r := rng.Float64(); {
			case r < 0.60:
				kind = "single"
			case r < 0.80:
				kind = "batch"
			default:
				// Coalesce bait arrives as a burst of identical requests —
				// the duplicate-heavy traffic shape the admission-time
				// coalescer exists for — so concurrent clients land them
				// in the queue together.
				for burst := 0; burst < 3 && len(reqs) < n; burst++ {
					if err := add("coalesce", coalesce(i)); err != nil {
						return nil, err
					}
				}
				continue
			}
		}
		var err error
		switch kind {
		case "single":
			err = add(kind, single(i))
		case "batch":
			err = add(kind, batch(i))
		case "coalesce":
			err = add(kind, coalesce(i))
		case "selective":
			err = add(kind, selective(i))
		default:
			return nil, fmt.Errorf("unknown scenario %q (choices: single, batch, coalesce, selective, mixed)", scenario)
		}
		if err != nil {
			return nil, err
		}
	}
	return reqs, nil
}

// post submits one solve and demands a finished job in the answer.
func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var st struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("job finished %q: %s", st.State, st.Error)
	}
	return nil
}

// quantile reads the q-th latency quantile from sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// scrapeCoalescing pulls the coalescing counters off /metrics.
func scrapeCoalescing(client *http.Client, addr string) (coalesced, widthCount string, err error) {
	resp, err := client.Get(strings.TrimRight(addr, "/") + "/metrics")
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", err
	}
	coalesced, widthCount = "?", "?"
	for _, line := range strings.Split(string(raw), "\n") {
		if v, ok := strings.CutPrefix(line, "abftd_jobs_coalesced_total "); ok {
			coalesced = v
		}
		if v, ok := strings.CutPrefix(line, "abftd_batch_width_count "); ok {
			widthCount = v
		}
	}
	return coalesced, widthCount, nil
}
