package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"abft/internal/service"
)

// TestAbftloadDrivesService runs the generator against an in-process
// service: every scenario's requests finish, the report carries the
// latency and throughput lines, and the mixed drive leaves the
// coalescing counters scrapeable.
func TestAbftloadDrivesService(t *testing.T) {
	srv := service.New(service.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, scenario := range []string{"single", "batch", "coalesce", "mixed"} {
		var out strings.Builder
		err := run([]string{
			"-addr", ts.URL, "-scenario", scenario,
			"-n", "12", "-c", "6", "-nx", "8",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v\n%s", scenario, err, out.String())
		}
		for _, want := range []string{"0 failed", "solves/sec", "latency p50", "coalesced"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s report missing %q:\n%s", scenario, want, out.String())
			}
		}
	}
}

// TestAbftloadBadInputs: flag and scenario validation fail loudly.
func TestAbftloadBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Fatal("zero requests accepted")
	}
	// No server listening: the drive must report the failures.
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-n", "2", "-c", "1"}, &out); err == nil {
		t.Fatal("unreachable server reported success")
	}
}
