package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-nx", "16", "-steps", "1",
		"-format", "sellcs", "-elements", "secded64", "-vectors", "sed",
		"-eps", "1e-8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"TeaLeaf", "step    1", "field summary", "temperature"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunPreconditioned drives a protected preconditioned solve through
// the -solver/-precond flags and checks the configuration is reported.
func TestRunPreconditioned(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-nx", "16", "-steps", "1",
		"-solver", "pcg", "-precond", "sgs",
		"-elements", "secded64", "-vectors", "secded64",
		"-eps", "1e-8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"solver pcg", "precond sgs", "field summary"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunPrecondUsage: the -precond flag must appear in the usage text
// with its registered choices.
func TestRunPrecondUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err == nil {
		t.Fatal("-h did not stop the run")
	}
	for _, want := range []string{"-precond", "jacobi, bjacobi, sgs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("usage missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsUnknownNames: unknown -scheme/-format values must list
// the registered choices instead of failing opaquely.
func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-elements", "tmr"}, "choices: none, sed, secded64, secded128, crc32c"},
		{[]string{"-vectors", "hamming"}, "choices: none, sed, secded64, secded128, crc32c"},
		{[]string{"-format", "ellpack"}, "choices: csr, coo, sellcs"},
		{[]string{"-solver", "gmres"}, "choices: cg, jacobi, chebyshev, ppcg, pcg"},
		{[]string{"-precond", "ilu"}, "choices: none, jacobi, bjacobi, sgs"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not list %q", c.args, err, c.want)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunRecoveryFlag smokes the solver recovery knobs.
func TestRunRecoveryFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-nx", "8", "-steps", "1", "-vectors", "secded64",
		"-recovery", "rollback", "-ckpt-interval", "8"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "recovery=rollback") {
		t.Errorf("output missing recovery configuration:\n%s", out.String())
	}
	if err := run([]string{"-recovery", "bogus"}, &out); err == nil {
		t.Fatal("unknown recovery policy accepted")
	}
}
