package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-nx", "16", "-steps", "1",
		"-format", "sellcs", "-elements", "secded64", "-vectors", "sed",
		"-eps", "1e-8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"TeaLeaf", "step    1", "field summary", "temperature"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsUnknownNames: unknown -scheme/-format values must list
// the registered choices instead of failing opaquely.
func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-elements", "tmr"}, "choices: none, sed, secded64, secded128, crc32c"},
		{[]string{"-vectors", "hamming"}, "choices: none, sed, secded64, secded128, crc32c"},
		{[]string{"-format", "ellpack"}, "choices: csr, coo, sellcs"},
		{[]string{"-solver", "gmres"}, "choices: cg, jacobi, chebyshev, ppcg"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not list %q", c.args, err, c.want)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
