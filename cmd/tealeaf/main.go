// Command tealeaf runs the TeaLeaf heat-conduction mini-app with
// configurable ABFT protection, printing per-step solver statistics and
// the final field summary in the style of the reference implementation.
//
// Usage:
//
//	tealeaf [flags]
//	tealeaf -in tea.in
//
// Examples:
//
//	tealeaf -nx 512 -steps 5 -elements secded64 -rowptr secded64 -vectors secded64
//	tealeaf -nx 2048 -steps 5 -elements crc32c -interval 128 -crc software
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"abft/internal/core"
	"abft/internal/ecc"
	"abft/internal/op"
	"abft/internal/precond"
	"abft/internal/solvers"
	"abft/internal/tealeaf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tealeaf:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tealeaf", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		inFile   = fs.String("in", "", "TeaLeaf input deck (tea.in format); flags override")
		nx       = fs.Int("nx", 0, "grid cells per side (overrides deck)")
		steps    = fs.Int("steps", 0, "timesteps (overrides deck)")
		solver   = fs.String("solver", "", "solver: cg, jacobi, chebyshev, ppcg, pcg")
		pre      = fs.String("precond", "", "preconditioner: none, jacobi, bjacobi, sgs (protected like the matrix)")
		eps      = fs.Float64("eps", 0, "solver tolerance")
		relative = fs.Bool("relative", false, "measure tolerance against the initial residual")
		format   = fs.String("format", "", "matrix storage format: csr, coo, sellcs")
		elems    = fs.String("elements", "", "matrix element protection: none, sed, secded64, secded128, crc32c")
		rowptr   = fs.String("rowptr", "", "row-pointer protection scheme")
		vectors  = fs.String("vectors", "", "dense vector protection scheme")
		interval = fs.Int("interval", 0, "full matrix checks every n-th sweep")
		crc      = fs.String("crc", "", "crc32c backend: hardware, software")
		workers  = fs.Int("workers", 0, "kernel goroutines")
		shards   = fs.Int("shards", 0, "row-partition the operator into this many bands with protected halo exchanges")
		retry    = fs.Bool("retry", false, "reprotect and retry a step after an uncorrectable fault")
		recovery = fs.String("recovery", "", "solver recovery policy for faults in dynamic state: off, rollback, restart")
		ckpt     = fs.Int("ckpt-interval", 0, "rollback checkpoint cadence in iterations (0 adapts to the fault rate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := tealeaf.DefaultConfig()
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			return err
		}
		cfg, err = tealeaf.ParseInput(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *nx > 0 {
		cfg.NX, cfg.NY = *nx, *nx
	}
	if *steps > 0 {
		cfg.EndStep = *steps
	}
	if *solver != "" {
		kind, err := solvers.ParseKind(*solver)
		if err != nil {
			return err
		}
		cfg.Solver = kind
	}
	if *pre != "" {
		kind, err := precond.ParseKind(*pre)
		if err != nil {
			return err
		}
		cfg.Precond = kind
	}
	if *eps > 0 {
		cfg.Eps = *eps
	}
	cfg.RelativeTol = cfg.RelativeTol || *relative
	if *format != "" {
		f, err := op.ParseFormat(*format)
		if err != nil {
			return err
		}
		cfg.Format = f
	}
	if err := setScheme(*elems, &cfg.ElemScheme); err != nil {
		return err
	}
	if err := setScheme(*rowptr, &cfg.RowPtrScheme); err != nil {
		return err
	}
	if err := setScheme(*vectors, &cfg.VectorScheme); err != nil {
		return err
	}
	if *interval > 0 {
		cfg.CheckInterval = *interval
	}
	switch *crc {
	case "":
	case "hardware", "hw":
		cfg.CRCBackend = ecc.Hardware
	case "software", "sw":
		cfg.CRCBackend = ecc.Software
	default:
		return fmt.Errorf("unknown crc backend %q", *crc)
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	cfg.RetryOnFault = cfg.RetryOnFault || *retry
	if *recovery != "" {
		pol, err := solvers.ParseRecovery(*recovery)
		if err != nil {
			return err
		}
		cfg.Recovery.Policy = pol
	}
	if *ckpt > 0 {
		cfg.Recovery.Interval = *ckpt
	}
	// Report the effective configuration (pcg's implicit Jacobi
	// preconditioner included), exactly what the simulation will run.
	cfg = cfg.Normalized()

	fmt.Fprintf(stdout, "TeaLeaf (ABFT reproduction)\n")
	fmt.Fprintf(stdout, "  grid %dx%d, %d steps, dt %g, solver %v, precond %v\n",
		cfg.NX, cfg.NY, cfg.EndStep, cfg.DtInit, cfg.Solver, cfg.Precond)
	fmt.Fprintf(stdout, "  protection: format=%v elements=%v rowptr=%v vectors=%v interval=%d crc=%v workers=%d shards=%d recovery=%v\n",
		cfg.Format, cfg.ElemScheme, cfg.RowPtrScheme, cfg.VectorScheme, cfg.CheckInterval,
		cfg.CRCBackend, cfg.Workers, cfg.Shards, cfg.Recovery.Policy)

	sim, err := tealeaf.New(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	for s := 0; s < cfg.EndStep; s++ {
		stepStart := time.Now()
		sr, err := sim.Advance()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "step %4d: %5d iterations, residual %.3e, %8.3fs",
			sr.Step, sr.Iterations, sr.ResidualNorm, time.Since(stepStart).Seconds())
		if sr.Corrected > 0 || sr.Detected > 0 || sr.Retried || sr.Rollbacks > 0 {
			fmt.Fprintf(stdout, "  [corrected=%d detected=%d retried=%v rollbacks=%d recomputed=%d]",
				sr.Corrected, sr.Detected, sr.Retried, sr.Rollbacks, sr.RecomputedIterations)
		}
		fmt.Fprintln(stdout)
	}
	elapsed := time.Since(start)

	sum := sim.FieldSummary()
	fmt.Fprintf(stdout, "\nfield summary\n")
	fmt.Fprintf(stdout, "  volume          %.6e\n", sum.Volume)
	fmt.Fprintf(stdout, "  mass            %.6e\n", sum.Mass)
	fmt.Fprintf(stdout, "  internal energy %.6e\n", sum.InternalEnergy)
	fmt.Fprintf(stdout, "  temperature     %.6e\n", sum.Temperature)
	snap := sim.Counters().Snapshot()
	fmt.Fprintf(stdout, "\nabft: %v\n", snap)
	fmt.Fprintf(stdout, "wall clock %.3fs\n", elapsed.Seconds())
	return nil
}

func setScheme(s string, dst *core.Scheme) error {
	if s == "" {
		return nil
	}
	v, err := core.ParseScheme(s)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}
