package abft

import (
	"abft/internal/coo"
	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/ecc"
	"abft/internal/op"
	"abft/internal/precond"
	"abft/internal/sell"
	"abft/internal/shard"
	"abft/internal/solvers"
)

// Scheme selects a software ECC protection scheme.
type Scheme = core.Scheme

// Protection schemes (see the package documentation of internal/core).
const (
	// None disables protection (the baseline).
	None = core.None
	// SED is single-error-detecting parity.
	SED = core.SED
	// SECDED64 corrects single and detects double bit flips per codeword.
	SECDED64 = core.SECDED64
	// SECDED128 halves the redundancy of SECDED64 by pairing elements.
	SECDED128 = core.SECDED128
	// CRC32C protects multi-element codewords with a 32-bit checksum
	// (Hamming distance 6 at the codeword sizes used here).
	CRC32C = core.CRC32C
)

// Schemes lists every scheme including None.
var Schemes = core.Schemes

// ParseScheme converts a scheme name ("sed", "secded64", ...) to a Scheme.
func ParseScheme(s string) (Scheme, error) { return core.ParseScheme(s) }

// CRCBackend selects the CRC32C implementation.
type CRCBackend = ecc.Backend

// CRC32C backends.
const (
	// CRCHardware uses the platform CRC32 instruction via hash/crc32.
	CRCHardware = ecc.Hardware
	// CRCSoftware uses the pure-Go slicing-by-16 implementation.
	CRCSoftware = ecc.Software
)

// Vector is an ABFT-protected dense float64 vector.
type Vector = core.Vector

// NewVector returns a zero-filled protected vector of length n.
func NewVector(n int, s Scheme) *Vector { return core.NewVector(n, s) }

// VectorFromSlice builds a protected vector holding a copy of data.
func VectorFromSlice(data []float64, s Scheme) *Vector { return core.VectorFromSlice(data, s) }

// ProtectedMatrix is the format-agnostic protected sparse matrix every
// storage format implements; all solvers operate through it. See
// core.ProtectedMatrix for the contract.
type ProtectedMatrix = core.ProtectedMatrix

// Format names a protected sparse storage format.
type Format = op.Format

// Storage formats.
const (
	// FormatCSR is compressed sparse row, the paper's primary format.
	FormatCSR = op.CSR
	// FormatCOO is coordinate (triplet) format.
	FormatCOO = op.COO
	// FormatSELLCS is SELL-C-sigma (sliced ELLPACK).
	FormatSELLCS = op.SELLCS
)

// Formats lists every storage format.
var Formats = op.Formats

// ParseFormat converts a format name ("csr", "coo", "sellcs") to a Format.
func ParseFormat(s string) (Format, error) { return op.ParseFormat(s) }

// FormatOptions configures protection for any storage format.
type FormatOptions = op.Config

// NewProtectedMatrix builds a protected matrix of the given storage
// format from an unprotected CSR source; the result is used through the
// ProtectedMatrix interface and can be handed to any solver.
func NewProtectedMatrix(f Format, src *CSRMatrix, opt FormatOptions) (ProtectedMatrix, error) {
	return op.New(f, src, opt)
}

// ReadMode selects how reads of protected storage treat their
// codewords — the trust ladder of the read path.
type ReadMode = core.ReadMode

// Read modes for ProtectedMatrix.SetReadMode and Vector reads.
const (
	// ModeExclusive verifies every codeword and commits repairs in
	// place (the default; requires exclusive ownership of the storage).
	ModeExclusive = core.ModeExclusive
	// ModeShared verifies every codeword but never writes the storage,
	// so concurrent readers are safe; repairs apply to the value stream
	// only.
	ModeShared = core.ModeShared
	// ModeUnverified skips codeword decode entirely — payload stream
	// plus mask and bounds checks only, no commits, counters untouched.
	// The fast path for selective reliability's unverified inner phase;
	// anything read this way must stay inside a verified outer
	// iteration that can absorb undetected corruption.
	ModeUnverified = core.ModeUnverified
)

// Matrix is an ABFT-protected CSR sparse matrix.
type Matrix = core.Matrix

// MatrixOptions configures matrix protection.
type MatrixOptions = core.MatrixOptions

// NewMatrix builds a protected copy of a CSR matrix.
func NewMatrix(src *CSRMatrix, opt MatrixOptions) (*Matrix, error) {
	return core.NewMatrix(src, opt)
}

// COOMatrix is an ABFT-protected coordinate-format sparse matrix, the
// second storage format of the paper's lineage.
type COOMatrix = coo.Matrix

// COOOptions configures COO protection.
type COOOptions = coo.Options

// NewCOOMatrix builds a protected coordinate-format copy of a CSR matrix.
func NewCOOMatrix(src *CSRMatrix, opt COOOptions) (*COOMatrix, error) {
	return coo.NewMatrix(src, opt)
}

// SELLMatrix is an ABFT-protected SELL-C-sigma (sliced ELLPACK) sparse
// matrix, the third storage format behind the shared Operator API.
type SELLMatrix = sell.Matrix

// SELLOptions configures SELL-C-sigma protection.
type SELLOptions = sell.Options

// NewSELLMatrix builds a protected SELL-C-sigma copy of a CSR matrix.
func NewSELLMatrix(src *CSRMatrix, opt SELLOptions) (*SELLMatrix, error) {
	return sell.NewMatrix(src, opt)
}

// ShardedOperator is a row-partitioned protected operator: any
// assembled matrix split into bands, each holding a protected local
// matrix in any storage format, with integrity-checked halo exchanges
// between bands and tree-reduced inner products — the in-process
// analogue of the paper's MPI deployment. It satisfies ProtectedMatrix,
// so every solver and the abftd service run over it unchanged.
type ShardedOperator = shard.Operator

// ShardOptions configures a sharded operator: band count, per-shard
// storage format and protection, and the halo-buffer vector scheme.
type ShardOptions = shard.Options

// NewShardedOperator row-partitions src into a sharded protected
// operator.
func NewShardedOperator(src *CSRMatrix, opt ShardOptions) (*ShardedOperator, error) {
	return shard.New(src, opt)
}

// Preconditioner is an ECC-protected preconditioner: its setup product
// lives in codeword-protected storage, is verified on every Apply and
// patrolled by Scrub like a cached matrix. It satisfies
// SolveOptions.Preconditioner.
type Preconditioner = precond.Preconditioner

// PrecondKind names a preconditioner algorithm.
type PrecondKind = precond.Kind

// Preconditioner kinds.
const (
	// PrecondNone disables preconditioning.
	PrecondNone = precond.None
	// PrecondJacobi scales by the protected inverse diagonal.
	PrecondJacobi = precond.Jacobi
	// PrecondBlockJacobi solves codeword-block diagonal systems with
	// protected precomputed inverses.
	PrecondBlockJacobi = precond.BlockJacobi
	// PrecondSGS runs protected symmetric Gauss-Seidel sweeps.
	PrecondSGS = precond.SGS
)

// PrecondKinds lists every preconditioner kind.
var PrecondKinds = precond.Kinds

// ParsePrecond converts a preconditioner name ("jacobi", "bjacobi",
// "sgs") to its kind.
func ParsePrecond(s string) (PrecondKind, error) { return precond.ParseKind(s) }

// PrecondOptions configures a preconditioner build: the protection
// scheme of its setup product, the CRC backend, the Apply worker count
// and an optional band decomposition.
type PrecondOptions = precond.Options

// NewPreconditioner builds an ECC-protected preconditioner of the given
// kind for the operator src describes.
func NewPreconditioner(kind PrecondKind, src *CSRMatrix, opt PrecondOptions) (Preconditioner, error) {
	return precond.New(kind, src, opt)
}

// CSRMatrix is the unprotected compressed-sparse-row substrate.
type CSRMatrix = csr.Matrix

// Entry is a (row, col, value) triplet for CSR construction.
type Entry = csr.Entry

// NewCSR assembles an unprotected CSR matrix from triplets.
func NewCSR(rows, cols int, entries []Entry) (*CSRMatrix, error) {
	return csr.New(rows, cols, entries)
}

// FivePoint assembles the TeaLeaf-style five-point stencil operator.
func FivePoint(nx, ny int, kx, ky []float64, rx, ry float64) *CSRMatrix {
	return csr.FivePoint(nx, ny, kx, ky, rx, ry)
}

// Laplacian2D builds the standard five-point Poisson operator.
func Laplacian2D(nx, ny int) *CSRMatrix { return csr.Laplacian2D(nx, ny) }

// IrregularSPD builds a deterministic irregular symmetric positive
// definite operator with no geometric structure — the general-matrix
// counterpart of the stencil generators, useful for exercising sharded
// and format-agnostic paths.
func IrregularSPD(n int) *CSRMatrix { return csr.IrregularSPD(n) }

// ConvectionDiffusion2D builds the upwind five-point
// convection-diffusion operator (diffusion plus a px*du/dx + py*du/dy
// convection term, px, py >= 0): diagonally dominant and — for nonzero
// convection — nonsymmetric, the reference problem for SolveFGMRES and
// selective reliability.
func ConvectionDiffusion2D(nx, ny int, px, py float64) *CSRMatrix {
	return csr.ConvectionDiffusion2D(nx, ny, px, py)
}

// Counters accumulates integrity-check statistics across structures.
type Counters = core.Counters

// CounterSnapshot is a point-in-time copy of Counters.
type CounterSnapshot = core.CounterSnapshot

// FaultError reports a detected uncorrectable error.
type FaultError = core.FaultError

// BoundsError reports an out-of-range index stopped by a range check.
type BoundsError = core.BoundsError

// Kernels. Every kernel checks (and where possible repairs) the codewords
// it touches; workers below 2 run serially.

// SpMV computes dst = m * x.
func SpMV(dst *Vector, m *Matrix, x *Vector, workers int) error {
	return core.SpMV(dst, m, x, workers)
}

// Dot returns the inner product of a and b.
func Dot(a, b *Vector, workers int) (float64, error) { return core.Dot(a, b, workers) }

// Axpy computes y += alpha*x.
func Axpy(y *Vector, alpha float64, x *Vector, workers int) error {
	return core.Axpy(y, alpha, x, workers)
}

// Waxpby computes dst = alpha*x + beta*y; dst may alias x or y.
func Waxpby(dst *Vector, alpha float64, x *Vector, beta float64, y *Vector, workers int) error {
	return core.Waxpby(dst, alpha, x, beta, y, workers)
}

// Copy transfers src into dst, re-encoding under dst's scheme.
func Copy(dst, src *Vector, workers int) error { return core.Copy(dst, src, workers) }

// Solvers.

// SolveOptions configures an iterative solve.
type SolveOptions = solvers.Options

// SolveResult reports a solve outcome.
type SolveResult = solvers.Result

// SolverKind names a solver algorithm.
type SolverKind = solvers.Kind

// Solver kinds.
const (
	// KindCG is conjugate gradients, the paper's instrumented solver.
	KindCG = solvers.KindCG
	// KindJacobi is the pointwise Jacobi iteration.
	KindJacobi = solvers.KindJacobi
	// KindChebyshev is the Chebyshev semi-iteration.
	KindChebyshev = solvers.KindChebyshev
	// KindPPCG is polynomially preconditioned CG.
	KindPPCG = solvers.KindPPCG
	// KindPCG is explicitly preconditioned CG.
	KindPCG = solvers.KindPCG
	// KindBlockCG is multi-right-hand-side CG.
	KindBlockCG = solvers.KindBlockCG
	// KindFGMRES is flexible restarted GMRES, the nonsymmetric solver
	// and selective-reliability host.
	KindFGMRES = solvers.KindFGMRES
)

// SolverKinds lists every solver algorithm.
var SolverKinds = solvers.Kinds

// ParseSolverKind converts a solver name ("cg", "fgmres", ...) to its
// SolverKind.
func ParseSolverKind(s string) (SolverKind, error) { return solvers.ParseKind(s) }

// Reliability selects how much of a solve runs under verified reads.
type Reliability = solvers.Reliability

// Reliability modes for SolveOptions.Reliability.
const (
	// ReliabilityFull verifies every read of the solve (the default).
	ReliabilityFull = solvers.ReliabilityFull
	// ReliabilitySelective runs FGMRES's inner preconditioner-solve
	// through the unverified no-decode read path while the outer
	// iteration stays verified and checkpointed; inner faults are
	// absorbed as extra iterations, never silent corruption.
	ReliabilitySelective = solvers.ReliabilitySelective
)

// Reliabilities lists every reliability mode.
var Reliabilities = solvers.Reliabilities

// ParseReliability converts a reliability name ("full", "selective")
// to its Reliability.
func ParseReliability(s string) (Reliability, error) { return solvers.ParseReliability(s) }

// RecoveryPolicy names the solver's reaction to a detected
// uncorrectable fault in its own dynamic state (the x, r, p iteration
// vectors): surface it, roll back to a protected checkpoint, or restart
// the recurrence.
type RecoveryPolicy = solvers.RecoveryPolicy

// Recovery policies for SolveOptions.Recovery.
const (
	// RecoveryOff surfaces the fault as an error (the default).
	RecoveryOff = solvers.RecoveryOff
	// RecoveryRollback checkpoints the live solver vectors into
	// codeword-protected storage every K iterations and resumes from
	// the last good checkpoint after a fault.
	RecoveryRollback = solvers.RecoveryRollback
	// RecoveryRestart rewinds a faulted solve to iteration zero.
	RecoveryRestart = solvers.RecoveryRestart
)

// RecoveryOptions configures the checkpoint/rollback recovery
// controller: policy, checkpoint cadence, rollback budget and the
// checkpoint storage's protection scheme.
type RecoveryOptions = solvers.Recovery

// ParseRecovery converts a recovery policy name ("off", "rollback",
// "restart") to its RecoveryPolicy.
func ParseRecovery(s string) (RecoveryPolicy, error) { return solvers.ParseRecovery(s) }

// SolveCG solves m x = b by conjugate gradients, the paper's solver. m is
// a protected matrix of any storage format (CSR, COO, SELL-C-sigma); a
// *Matrix built with NewMatrix works unchanged.
func SolveCG(m ProtectedMatrix, x, b *Vector, opt SolveOptions) (SolveResult, error) {
	return solvers.CG(solvers.MatrixOperator{M: m, Workers: opt.Workers}, x, b, opt)
}

// SolveJacobi solves m x = b with the Jacobi iteration; m is a protected
// matrix of any storage format.
func SolveJacobi(m ProtectedMatrix, x, b *Vector, opt SolveOptions) (SolveResult, error) {
	return solvers.Jacobi(solvers.MatrixOperator{M: m, Workers: opt.Workers}, x, b, opt)
}

// SolveChebyshev solves m x = b with the Chebyshev semi-iteration; m is a
// protected matrix of any storage format.
func SolveChebyshev(m ProtectedMatrix, x, b *Vector, opt SolveOptions) (SolveResult, error) {
	return solvers.Chebyshev(solvers.MatrixOperator{M: m, Workers: opt.Workers}, x, b, opt)
}

// SolvePPCG solves m x = b with polynomially preconditioned CG; m is a
// protected matrix of any storage format.
func SolvePPCG(m ProtectedMatrix, x, b *Vector, opt SolveOptions) (SolveResult, error) {
	return solvers.PPCG(solvers.MatrixOperator{M: m, Workers: opt.Workers}, x, b, opt)
}

// SolvePCG solves m x = b with explicitly preconditioned CG: the
// preconditioner from opt.Preconditioner (for example one built with
// NewPreconditioner), or a Jacobi preconditioner derived from the
// operator's verified diagonal when none is set.
func SolvePCG(m ProtectedMatrix, x, b *Vector, opt SolveOptions) (SolveResult, error) {
	return solvers.PCG(solvers.MatrixOperator{M: m, Workers: opt.Workers}, x, b, opt)
}

// SolveFGMRES solves m x = b by flexible restarted GMRES — the
// nonsymmetric solver. With opt.Reliability set to ReliabilitySelective
// its inner solve reads through the unverified no-decode path while the
// outer iteration stays verified; opt.Restart sets the cycle length.
func SolveFGMRES(m ProtectedMatrix, x, b *Vector, opt SolveOptions) (SolveResult, error) {
	return solvers.FGMRES(solvers.MatrixOperator{M: m, Workers: opt.Workers}, x, b, opt)
}

// IsFault reports whether err stems from a detected ABFT fault rather than
// a numerical or usage problem.
func IsFault(err error) bool { return solvers.IsFault(err) }
