// Package abft is a Go implementation of the application-based fault
// tolerance techniques of Pawelczak, McIntosh-Smith, Price and Martineau,
// "Application-Based Fault Tolerance Techniques for Fully Protecting
// Sparse Matrix Solvers" (IEEE CLUSTER 2017): software ECC — parity,
// SECDED Hamming codes and CRC32C — embedded into the unused bits of
// sparse-matrix index structures and the mantissa tails of dense float64
// vectors, so that every data structure of an iterative sparse solver is
// protected against memory bit flips with zero storage overhead.
//
// Three protected storage formats — CSR, COO and SELL-C-sigma — sit
// behind the format-agnostic ProtectedMatrix interface; every solver,
// fault campaign and benchmark operates through it.
//
// The package is a facade over the implementation packages:
//
//   - internal/ecc      — the error detecting and correcting codes
//   - internal/core     — protected CSR matrix, vectors, kernels and the
//     ProtectedMatrix interface
//   - internal/csr      — the unprotected CSR substrate
//   - internal/coo      — the protected coordinate format
//   - internal/sell     — the protected SELL-C-sigma format
//   - internal/op       — the storage-format registry
//   - internal/solvers  — CG, Jacobi, Chebyshev and PPCG
//   - internal/tealeaf  — the TeaLeaf heat-conduction mini-app workload
//   - internal/faults   — fault injection and outcome classification
//   - internal/bench    — reproduction of the paper's figures
//
// # Quick start
//
//	m, _ := abft.NewMatrix(abft.Laplacian2D(64, 64), abft.MatrixOptions{
//		ElemScheme:   abft.SECDED64,
//		RowPtrScheme: abft.SECDED64,
//	})
//	b := abft.NewVector(m.Rows(), abft.SECDED64)
//	b.Fill(1)
//	x := abft.NewVector(m.Rows(), abft.SECDED64)
//	res, err := abft.SolveCG(m, x, b, abft.SolveOptions{Tol: 1e-10})
//
// A single bit flipped anywhere in m, b or x is corrected transparently
// during the solve; uncorrectable corruption surfaces as a *FaultError the
// application can react to (for example by re-protecting and re-solving)
// instead of crashing or silently computing garbage.
package abft
