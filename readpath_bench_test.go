// Microbenchmarks of the verify-then-stream read primitives: the
// row-granular matrix scanner feeding triangular sweeps and the
// block-granular vector reads feeding the preconditioners and the shard
// pack/unpack path. Each benchmark pairs every protected scheme against
// the unprotected stream over the same storage, so the verified-read
// overhead — the quantity the batch-verify restructuring amortises —
// reads off directly as the ns/op ratio.
package abft_test

import (
	"math/rand"
	"testing"

	"abft/internal/core"
	"abft/internal/csr"
)

// BenchmarkRowScanner sweeps every row of a 128x128 five-point operator
// through the verified row stream (the symmetric Gauss-Seidel access
// pattern), per scheme. The scanner batch-verifies each row once and
// streams it unguarded, so protected sweeps should sit close to the
// "none" bar; the scanner is reset each sweep to re-verify from cold.
func BenchmarkRowScanner(b *testing.B) {
	plain := csr.Laplacian2D(128, 128)
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			m, err := core.NewMatrix(plain, core.MatrixOptions{
				ElemScheme: v.scheme, RowPtrScheme: v.scheme, Backend: v.backend,
			})
			if err != nil {
				b.Fatal(err)
			}
			s := m.NewRowScanner()
			var sink float64
			b.SetBytes(int64(plain.NNZ() * 12))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset()
				for r := 0; r < plain.Rows(); r++ {
					if err := s.Row(r, func(col int, val float64) { sink += val }); err != nil {
						b.Fatal(err)
					}
				}
			}
			_ = sink
		})
	}
}

// BenchmarkReadBlocks streams a protected vector through each of its
// block-read paths, per scheme:
//
//	nocheck  — ReadBlockNoCheck, the unguarded floor
//	verified — ReadBlock per block (exclusive mode, commits repairs)
//	shared   — ReadBlockShared per block (no write-back)
//	batched  — one ReadBlocksInto spanning 64 blocks, the shard
//	           pack/unpack and block-Jacobi access pattern
func BenchmarkReadBlocks(b *testing.B) {
	const n = 1 << 12
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	for _, v := range figureVariants {
		vec := core.VectorFromSlice(data, v.scheme)
		vec.SetCRCBackend(v.backend)
		nb := vec.Blocks()
		var blk [4]float64
		batch := make([]float64, 64*4)

		b.Run(v.name+"/nocheck", func(b *testing.B) {
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				for j := 0; j < nb; j++ {
					vec.ReadBlockNoCheck(j, &blk)
				}
			}
		})
		b.Run(v.name+"/verified", func(b *testing.B) {
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				for j := 0; j < nb; j++ {
					if err := vec.ReadBlock(j, &blk); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(v.name+"/shared", func(b *testing.B) {
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				for j := 0; j < nb; j++ {
					if err := vec.ReadBlockShared(j, &blk); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(v.name+"/batched", func(b *testing.B) {
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				for j := 0; j < nb; j += 64 {
					hi := j + 64
					if hi > nb {
						hi = nb
					}
					if err := vec.ReadBlocksInto(j, hi, batch[:(hi-j)*4]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
