package abft

import (
	"io"
	"log/slog"

	"abft/internal/mm"
	"abft/internal/obs"
	"abft/internal/service"
)

// The abftd solve service: a resident HTTP/JSON server that queues
// solve requests onto a bounded worker pool, shares protected operators
// across requests through a content-addressed LRU cache (the ECC encode
// cost is paid once per distinct matrix, not once per request), and
// patrols the cached operators with a background scrub daemon. See
// cmd/abftd for the daemon and internal/service for the mechanism.

// Service is the solve service: an http.Handler exposing POST
// /v1/solve, GET /v1/jobs/{id}, GET /healthz and GET /metrics.
type Service = service.Server

// ServiceConfig sizes a Service: worker pool, queue depth, operator
// cache capacity and scrub cadence.
type ServiceConfig = service.Config

// NewService builds and starts a solve service; Close it when done.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// SolveRequest is the body of POST /v1/solve.
type SolveRequest = service.SolveRequest

// SolveMatrixSpec describes the operator of a SolveRequest: a generated
// grid, raw triplets, or an inline MatrixMarket document.
type SolveMatrixSpec = service.MatrixSpec

// SolveGridSpec names a generated five-point Laplacian operator.
type SolveGridSpec = service.GridSpec

// SolveJobResult reports a finished service solve.
type SolveJobResult = service.SolveResult

// SolveJobStatus is the body of GET /v1/jobs/{id}.
type SolveJobStatus = service.JobStatus

// SolveTrace is the body of GET /v1/jobs/{id}/trace: the job's stage
// spans (admission, queue wait, operator build, solve, rollback
// recovery, retry), its fault counters, and the per-iteration residual
// trajectory.
type SolveTrace = service.TraceSnapshot

// SolveTraceSummary is the condensed per-stage timing embedded in a
// SolveJobStatus.
type SolveTraceSummary = service.TraceSummary

// FaultEvent is one entry of GET /v1/events: a scrub correction or
// eviction, a read-path fault detection, a solver rollback or a job
// retry, timestamped and attributed to the job and operator involved.
type FaultEvent = service.Event

// NewServiceLogger builds the leveled structured JSON logger a
// ServiceConfig.Logger expects, writing one object per line to w.
func NewServiceLogger(w io.Writer, level slog.Level) *slog.Logger {
	return obs.NewLogger(w, level)
}

// ReadMatrixMarket parses a MatrixMarket coordinate document into an
// unprotected CSR matrix (symmetric inputs are expanded); see
// internal/mm for the format subset.
func ReadMatrixMarket(r io.Reader) (*CSRMatrix, error) { return mm.Read(r) }

// ReadMatrixMarketFile reads a MatrixMarket file, transparently
// decompressing a ".gz" suffix.
func ReadMatrixMarketFile(path string) (*CSRMatrix, error) { return mm.ReadFile(path) }

// WriteMatrixMarket serialises a CSR matrix as MatrixMarket coordinate
// real general.
func WriteMatrixMarket(w io.Writer, m *CSRMatrix) error { return mm.Write(w, m) }
