// Benchmark entry points, one per experiment in DESIGN.md's index: every
// figure of the paper's evaluation (Figures 4-9 and the section VII-B
// full-protection result) plus microbenchmarks of the ECC primitives and
// the two ablations the paper motivates (buffered writes vs
// read-modify-write, and the stencil-aware decode cache).
//
// Each figure benchmark runs the TeaLeaf CG workload at a reduced size;
// compare ns/op across sub-benchmarks to read the overhead shape. The
// abftbench command runs the same experiments at paper scale and prints
// overhead percentages directly.
package abft_test

import (
	"fmt"
	"math/rand"
	"testing"

	"abft/internal/coo"
	"abft/internal/core"
	"abft/internal/csr"
	"abft/internal/ecc"
	"abft/internal/op"
	"abft/internal/shard"
	"abft/internal/solvers"
	"abft/internal/tealeaf"
)

// benchConfig is the reduced TeaLeaf workload used by the figure benches.
func benchConfig() tealeaf.Config {
	cfg := tealeaf.DefaultConfig()
	cfg.NX, cfg.NY = 64, 64
	cfg.EndStep = 1
	cfg.Eps = 1e-7
	cfg.RelativeTol = true
	return cfg
}

func runWorkload(b *testing.B, cfg tealeaf.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := tealeaf.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// figureVariants are the scheme bars of Figures 4, 5 and 9.
var figureVariants = []struct {
	name    string
	scheme  core.Scheme
	backend ecc.Backend
}{
	{"none", core.None, ecc.Hardware},
	{"sed", core.SED, ecc.Hardware},
	{"secded64", core.SECDED64, ecc.Hardware},
	{"secded128", core.SECDED128, ecc.Hardware},
	{"crc32c-hw", core.CRC32C, ecc.Hardware},
	{"crc32c-sw", core.CRC32C, ecc.Software},
}

// BenchmarkFig4CSRElementProtection reproduces Figure 4: the TeaLeaf CG
// solve with only the CSR elements protected.
func BenchmarkFig4CSRElementProtection(b *testing.B) {
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.ElemScheme = v.scheme
			cfg.CRCBackend = v.backend
			runWorkload(b, cfg)
		})
	}
}

// BenchmarkFig5RowPtrProtection reproduces Figure 5: only the row-pointer
// vector protected.
func BenchmarkFig5RowPtrProtection(b *testing.B) {
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.RowPtrScheme = v.scheme
			cfg.CRCBackend = v.backend
			runWorkload(b, cfg)
		})
	}
}

// BenchmarkFig9VectorProtection reproduces Figure 9: only the dense
// float64 vectors protected.
func BenchmarkFig9VectorProtection(b *testing.B) {
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.VectorScheme = v.scheme
			cfg.CRCBackend = v.backend
			runWorkload(b, cfg)
		})
	}
}

func intervalBench(b *testing.B, scheme core.Scheme, backend ecc.Backend) {
	b.Helper()
	for _, interval := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("interval-%d", interval), func(b *testing.B) {
			cfg := benchConfig()
			cfg.ElemScheme = scheme
			cfg.RowPtrScheme = scheme
			cfg.CheckInterval = interval
			cfg.CRCBackend = backend
			runWorkload(b, cfg)
		})
	}
}

// BenchmarkFig6SEDInterval reproduces Figure 6: full-CSR SED protection
// across check intervals.
func BenchmarkFig6SEDInterval(b *testing.B) {
	intervalBench(b, core.SED, ecc.Hardware)
}

// BenchmarkFig7SECDEDInterval reproduces Figure 7: full-CSR SECDED64
// across check intervals.
func BenchmarkFig7SECDEDInterval(b *testing.B) {
	intervalBench(b, core.SECDED64, ecc.Hardware)
}

// BenchmarkFig8CRCInterval reproduces Figure 8: full-CSR CRC32C with the
// software backend across check intervals (the consumer-GPU stand-in).
func BenchmarkFig8CRCInterval(b *testing.B) {
	intervalBench(b, core.CRC32C, ecc.Software)
}

// BenchmarkFullProtection reproduces the section VII-B headline: the
// whole solver state protected with SECDED64 vs the unprotected baseline
// (the paper compares against 8.1% hardware-ECC overhead).
func BenchmarkFullProtection(b *testing.B) {
	b.Run("none", func(b *testing.B) { runWorkload(b, benchConfig()) })
	b.Run("full-secded64", func(b *testing.B) {
		cfg := benchConfig()
		cfg.ElemScheme = core.SECDED64
		cfg.RowPtrScheme = core.SECDED64
		cfg.VectorScheme = core.SECDED64
		runWorkload(b, cfg)
	})
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the primitives.

// BenchmarkSECDEDCheck measures the clean-codeword check for every
// embedded layout used by the schemes.
func BenchmarkSECDEDCheck(b *testing.B) {
	layouts := []struct {
		name     string
		width    int
		checkPos []int
	}{
		{"vec64", 64, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{"elem96", 96, []int{88, 89, 90, 91, 92, 93, 94, 95}},
		{"vec128", 128, []int{0, 1, 2, 3, 4, 64, 65, 66, 67}},
		{"elem192", 192, []int{88, 89, 90, 91, 92, 184, 185, 186, 187}},
	}
	for _, l := range layouts {
		b.Run(l.name, func(b *testing.B) {
			c := ecc.MustSECDED(l.width, l.checkPos)
			var w ecc.Word4
			w[0] = 0x0123_4567_89AB_CDEF
			w[1] = 0x0000_0000_00FE_DCBA
			c.Encode(&w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cw := w
				if res, _ := c.Check(&cw); res != ecc.OK {
					b.Fatal("clean codeword failed")
				}
			}
		})
	}
}

// BenchmarkSECDEDEncode measures codeword encoding.
func BenchmarkSECDEDEncode(b *testing.B) {
	c := ecc.MustSECDED(64, []int{0, 1, 2, 3, 4, 5, 6, 7})
	var w ecc.Word4
	w[0] = 0xDEAD_BEEF_CAFE_0000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := w
		c.Encode(&cw)
	}
}

// BenchmarkCRC32CBackends compares the hardware-instruction path with the
// software slicing-by-16 path on codeword-sized and streaming buffers
// (the paper's section IV comparison).
func BenchmarkCRC32CBackends(b *testing.B) {
	for _, size := range []int{32, 60, 4096} {
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i)
		}
		for _, backend := range []ecc.Backend{ecc.Hardware, ecc.Software} {
			b.Run(fmt.Sprintf("%s-%dB", backend, size), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					_ = ecc.Checksum(buf, backend)
				}
			})
		}
	}
}

// BenchmarkSpMV measures the protected sparse matrix-vector product per
// scheme on a 128x128 five-point operator (both matrix and vector
// protected with the same scheme).
func BenchmarkSpMV(b *testing.B) {
	plain := csr.Laplacian2D(128, 128)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, plain.Cols32())
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			m, err := core.NewMatrix(plain, core.MatrixOptions{
				ElemScheme: v.scheme, RowPtrScheme: v.scheme, Backend: v.backend,
			})
			if err != nil {
				b.Fatal(err)
			}
			x := core.VectorFromSlice(xs, v.scheme)
			x.SetCRCBackend(v.backend)
			dst := core.NewVector(plain.Rows(), v.scheme)
			dst.SetCRCBackend(v.backend)
			b.SetBytes(int64(plain.NNZ() * 12))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.SpMV(dst, m, x, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDot measures the protected inner product per scheme.
func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			x := core.VectorFromSlice(data, v.scheme)
			x.SetCRCBackend(v.backend)
			b.SetBytes(int64(len(data) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Dot(x, x, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWaxpby measures the protected triad update per scheme.
func BenchmarkWaxpby(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	for _, v := range figureVariants {
		b.Run(v.name, func(b *testing.B) {
			x := core.VectorFromSlice(data, v.scheme)
			y := core.VectorFromSlice(data, v.scheme)
			x.SetCRCBackend(v.backend)
			y.SetCRCBackend(v.backend)
			b.SetBytes(int64(len(data) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.Waxpby(y, 1.0001, x, 0.5, y, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (section VI-C).

// BenchmarkAblationRMW compares the buffered group-write kernel against
// per-element read-modify-write: the cost the paper's write buffering
// eliminates (two integrity computations per element write).
func BenchmarkAblationRMW(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 1<<12)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	x := core.VectorFromSlice(data, core.SECDED64)
	b.Run("buffered", func(b *testing.B) {
		y := core.VectorFromSlice(data, core.SECDED64)
		b.SetBytes(int64(len(data) * 8))
		for i := 0; i < b.N; i++ {
			if err := core.Axpy(y, 1.0001, x, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rmw", func(b *testing.B) {
		y := core.VectorFromSlice(data, core.SECDED64)
		b.SetBytes(int64(len(data) * 8))
		for i := 0; i < b.N; i++ {
			if err := core.AxpyRMW(y, 1.0001, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStencilCache compares SpMV with and without the
// stencil-aware decoded-block cache.
func BenchmarkAblationStencilCache(b *testing.B) {
	plain := csr.Laplacian2D(128, 128)
	m, err := core.NewMatrix(plain, core.MatrixOptions{
		ElemScheme: core.SECDED64, RowPtrScheme: core.SECDED64,
	})
	if err != nil {
		b.Fatal(err)
	}
	x := core.VectorFromSlice(make([]float64, plain.Cols32()), core.SECDED64)
	dst := core.NewVector(plain.Rows(), core.SECDED64)
	for _, disabled := range []bool{false, true} {
		name := "cache-on"
		if disabled {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := core.SpMVOpts(dst, m, x, core.SpMVOptions{DisableCache: disabled})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCOOvsCSR compares the protected SpMV of the two storage
// formats covered by the paper's lineage at the same protection level
// (COO scatters through a dense accumulator; CSR streams output
// codewords directly).
func BenchmarkCOOvsCSR(b *testing.B) {
	plain := csr.Laplacian2D(128, 128)
	xs := make([]float64, plain.Cols32())
	for i := range xs {
		xs[i] = float64(i%17) - 8
	}
	x := core.VectorFromSlice(xs, core.None)
	dst := core.NewVector(plain.Rows(), core.None)
	b.Run("csr-secded64", func(b *testing.B) {
		m, err := core.NewMatrix(plain, core.MatrixOptions{
			ElemScheme: core.SECDED64, RowPtrScheme: core.SECDED64,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(plain.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			if err := core.SpMV(dst, m, x, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coo-secded64", func(b *testing.B) {
		m, err := coo.NewMatrix(plain, coo.Options{Scheme: core.SECDED64})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(plain.NNZ() * 16))
		for i := 0; i < b.N; i++ {
			if err := m.SpMV(dst, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationWorkers measures parallel kernel scaling (the
// goroutine analogue of the paper's OpenMP platform axis).
func BenchmarkAblationWorkers(b *testing.B) {
	cfgBase := benchConfig()
	cfgBase.ElemScheme = core.SECDED64
	cfgBase.RowPtrScheme = core.SECDED64
	cfgBase.VectorScheme = core.SECDED64
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			cfg := cfgBase
			cfg.Workers = w
			runWorkload(b, cfg)
		})
	}
}

// shardedOperator builds the sharded benchmark operator: the 64x64
// five-point system row-partitioned with full SECDED64 protection.
func shardedOperator(b *testing.B, shards int, format op.Format) *shard.Operator {
	b.Helper()
	o, err := shard.New(csr.Laplacian2D(64, 64), shard.Options{
		Shards: shards,
		Format: format,
		Config: op.Config{
			Scheme:       core.SECDED64,
			RowPtrScheme: core.SECDED64,
		},
		VectorScheme: core.SECDED64,
	})
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkShardedSpMV measures the distributed matrix-vector product —
// scatter, protected halo exchange, per-shard products, gather — across
// shard counts and storage formats.
func BenchmarkShardedSpMV(b *testing.B) {
	for _, format := range op.Formats {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%v/shards-%d", format, shards), func(b *testing.B) {
				o := shardedOperator(b, shards, format)
				xs := make([]float64, o.Cols())
				for i := range xs {
					xs[i] = float64(i%17) - 8
				}
				x := core.VectorFromSlice(xs, core.SECDED64)
				dst := core.NewVector(o.Rows(), core.SECDED64)
				b.SetBytes(int64(o.NNZ() * 12))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := o.Apply(dst, x, shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedCG measures the full distributed solve (protected
// halo exchange plus tree-reduced inner products every iteration)
// against the unsharded operator, across shard counts.
func BenchmarkShardedCG(b *testing.B) {
	bs := make([]float64, 64*64)
	for i := range bs {
		bs[i] = float64(i%13) - 6
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := shardedOperator(b, shards, op.CSR)
				x := core.NewVector(o.Rows(), core.SECDED64)
				rhs := core.VectorFromSlice(bs, core.SECDED64)
				res, err := solvers.CG(solvers.MatrixOperator{M: o, Workers: shards}, x, rhs,
					solvers.Options{Tol: 1e-8, MaxIter: 10000})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("sharded CG did not converge")
				}
			}
		})
	}
}

// BenchmarkSolvers compares the four solver algorithms on the protected
// workload (TeaLeaf's solver set).
func BenchmarkSolvers(b *testing.B) {
	for _, kind := range []solvers.Kind{solvers.KindCG, solvers.KindChebyshev, solvers.KindPPCG} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Solver = kind
			cfg.VectorScheme = core.SECDED64
			cfg.ElemScheme = core.SECDED64
			cfg.RowPtrScheme = core.SECDED64
			cfg.MaxIters = 100000
			runWorkload(b, cfg)
		})
	}
}

// BenchmarkSpMM measures the batched verified product per format and
// batch width on a 128x128 five-point SECDED64 operator. ns/op covers
// the whole batch; divide by the width for the per-RHS cost the
// SpMMAmortization figure tracks (matrix-side checks are paid once per
// pass, so per-RHS cost falls as k grows).
func BenchmarkSpMM(b *testing.B) {
	plain := csr.Laplacian2D(128, 128)
	rng := rand.New(rand.NewSource(3))
	for _, f := range op.Formats {
		for _, k := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%v/k-%d", f, k), func(b *testing.B) {
				m, err := op.New(f, plain, op.Config{Scheme: core.SECDED64})
				if err != nil {
					b.Fatal(err)
				}
				ba, ok := m.(core.BatchApplier)
				if !ok {
					b.Fatalf("%T does not implement core.BatchApplier", m)
				}
				cols := make([]*core.Vector, k)
				for j := range cols {
					xs := make([]float64, plain.Cols32())
					for i := range xs {
						xs[i] = rng.NormFloat64()
					}
					cols[j] = core.VectorFromSlice(xs, core.None)
				}
				x, err := core.WrapMultiVector(cols...)
				if err != nil {
					b.Fatal(err)
				}
				dst := core.NewMultiVector(plain.Rows(), k, core.None)
				b.SetBytes(int64(plain.NNZ() * 12))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := ba.ApplyBatch(dst, x, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFGMRES measures the flexible solver on a nonsymmetric
// convection-diffusion system at full SECDED64 protection, under both
// reliability modes: full verifies every read including the inner
// Richardson sweeps; selective runs the inner solve through the
// no-decode fast path and verifies only the outer Arnoldi recurrence.
// The ns/op gap is the verified-read cost selective reliability
// removes; fault-free both modes produce identical iterates.
func BenchmarkFGMRES(b *testing.B) {
	plain := csr.ConvectionDiffusion2D(48, 48, 1.5, 0.5)
	bs := make([]float64, plain.Rows())
	for i := range bs {
		bs[i] = float64((i*13)%29) - 14
	}
	for _, rel := range solvers.Reliabilities {
		b.Run(rel.String(), func(b *testing.B) {
			m, err := op.New(op.CSR, plain, op.Config{
				Scheme: core.SECDED64, RowPtrScheme: core.SECDED64,
			})
			if err != nil {
				b.Fatal(err)
			}
			a := solvers.MatrixOperator{M: m, Workers: 1}
			for i := 0; i < b.N; i++ {
				x := core.NewVector(plain.Rows(), core.SECDED64)
				rhs := core.VectorFromSlice(bs, core.SECDED64)
				res, err := solvers.FGMRES(a, x, rhs,
					solvers.Options{Tol: 1e-8, Reliability: rel})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("FGMRES did not converge")
				}
			}
		})
	}
}

// BenchmarkBlockCG measures the batched solver against k sequential
// single-RHS CG solves of the same protected system: identical
// arithmetic (block-CG runs k lockstep recurrences), one batched
// verified pass per iteration instead of k.
func BenchmarkBlockCG(b *testing.B) {
	plain := csr.Laplacian2D(48, 48)
	cols := func(k int) []*core.Vector {
		vs := make([]*core.Vector, k)
		for j := range vs {
			bs := make([]float64, plain.Rows())
			for i := range bs {
				bs[i] = float64((i*13+j*7)%29) - 14
			}
			vs[j] = core.VectorFromSlice(bs, core.SECDED64)
		}
		return vs
	}
	opts := solvers.Options{Tol: 1e-8, MaxIter: 10000}
	for _, k := range []int{1, 4, 8} {
		m, err := op.New(op.CSR, plain, op.Config{Scheme: core.SECDED64})
		if err != nil {
			b.Fatal(err)
		}
		a := solvers.MatrixOperator{M: m, Workers: 1}
		b.Run(fmt.Sprintf("block/k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xv := make([]*core.Vector, k)
				for j := range xv {
					xv[j] = core.NewVector(plain.Rows(), core.SECDED64)
				}
				x, err := core.WrapMultiVector(xv...)
				if err != nil {
					b.Fatal(err)
				}
				rhs, err := core.WrapMultiVector(cols(k)...)
				if err != nil {
					b.Fatal(err)
				}
				res, err := solvers.BlockCG(a, x, rhs, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("block CG did not converge")
				}
			}
		})
		b.Run(fmt.Sprintf("sequential/k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, rhs := range cols(k) {
					x := core.NewVector(plain.Rows(), core.SECDED64)
					res, err := solvers.CG(a, x, rhs, opts)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatal("CG did not converge")
					}
				}
			}
		})
	}
}
